#include "interp/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace avm::interp {
namespace {

using dsl::ScalarOp;

const KernelRegistry& Reg() { return KernelRegistry::Get(); }

TEST(RegistryTest, ManyKernelsRegistered) {
  // The "pre-compiled specialized function" cross product must be large —
  // the paper's point is that engines pre-generate these at build time.
  EXPECT_GT(Reg().NumRegistered(), 800u);
}

// ---------------------------------------------------------------------------
// Binary arithmetic across numeric types, all operand modes, both
// selectivity variants — differential against scalar C++.
// ---------------------------------------------------------------------------

template <typename T>
void CheckBinary(ScalarOp op, T (*oracle)(T, T)) {
  const TypeId t = TypeIdOf<T>::value;
  Rng rng(static_cast<uint64_t>(op) * 7 + static_cast<uint64_t>(t));
  const uint32_t n = 333;
  std::vector<T> a(n), b(n), out(n);
  for (uint32_t i = 0; i < n; ++i) {
    a[i] = static_cast<T>(rng.NextInRange(-100, 100));
    b[i] = static_cast<T>(rng.NextInRange(-100, 100));
    if (b[i] == 0) b[i] = 1;
  }
  // VecVec, non-selective.
  PrimKernelFn fn = Reg().Binary(op, t, OperandMode::kVecVec, false);
  ASSERT_NE(fn, nullptr);
  fn(a.data(), b.data(), out.data(), nullptr, n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], oracle(a[i], b[i])) << "i=" << i;
  }
  // VecScalar.
  fn = Reg().Binary(op, t, OperandMode::kVecScalar, false);
  fn(a.data(), b.data(), out.data(), nullptr, n);
  for (uint32_t i = 0; i < n; ++i) ASSERT_EQ(out[i], oracle(a[i], b[0]));
  // ScalarVec.
  fn = Reg().Binary(op, t, OperandMode::kScalarVec, false);
  fn(a.data(), b.data(), out.data(), nullptr, n);
  for (uint32_t i = 0; i < n; ++i) ASSERT_EQ(out[i], oracle(a[0], b[i]));
  // Selective: only chosen lanes written.
  std::vector<sel_t> sel{1, 5, 7, 100, 332};
  std::vector<T> out2(n, T(99));
  fn = Reg().Binary(op, t, OperandMode::kVecVec, true);
  fn(a.data(), b.data(), out2.data(), sel.data(),
     static_cast<uint32_t>(sel.size()));
  for (sel_t i : sel) ASSERT_EQ(out2[i], oracle(a[i], b[i]));
  ASSERT_EQ(out2[0], T(99));  // untouched lane
}

template <typename T>
struct Oracles {
  static T Add(T a, T b) { return static_cast<T>(a + b); }
  static T Sub(T a, T b) { return static_cast<T>(a - b); }
  static T Mul(T a, T b) { return static_cast<T>(a * b); }
  static T Min(T a, T b) { return a < b ? a : b; }
  static T Max(T a, T b) { return a > b ? a : b; }
};

template <typename T>
void CheckAllArith() {
  CheckBinary<T>(ScalarOp::kAdd, &Oracles<T>::Add);
  CheckBinary<T>(ScalarOp::kSub, &Oracles<T>::Sub);
  CheckBinary<T>(ScalarOp::kMul, &Oracles<T>::Mul);
  CheckBinary<T>(ScalarOp::kMin, &Oracles<T>::Min);
  CheckBinary<T>(ScalarOp::kMax, &Oracles<T>::Max);
}

TEST(BinaryKernelTest, I8) { CheckAllArith<int8_t>(); }
TEST(BinaryKernelTest, I16) { CheckAllArith<int16_t>(); }
TEST(BinaryKernelTest, I32) { CheckAllArith<int32_t>(); }
TEST(BinaryKernelTest, I64) { CheckAllArith<int64_t>(); }
TEST(BinaryKernelTest, F32) { CheckAllArith<float>(); }
TEST(BinaryKernelTest, F64) { CheckAllArith<double>(); }

TEST(BinaryKernelTest, IntDivisionByZeroYieldsZero) {
  int64_t a[3] = {10, 7, -4};
  int64_t b[3] = {2, 0, 0};
  int64_t out[3];
  Reg().Binary(ScalarOp::kDiv, TypeId::kI64, OperandMode::kVecVec, false)(
      a, b, out, nullptr, 3);
  EXPECT_EQ(out[0], 5);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 0);
}

TEST(BinaryKernelTest, IntMinDivMinusOneDefined) {
  int64_t a[1] = {INT64_MIN};
  int64_t b[1] = {-1};
  int64_t out[1];
  Reg().Binary(ScalarOp::kDiv, TypeId::kI64, OperandMode::kVecVec, false)(
      a, b, out, nullptr, 1);
  EXPECT_EQ(out[0], INT64_MIN);
  Reg().Binary(ScalarOp::kMod, TypeId::kI64, OperandMode::kVecVec, false)(
      a, b, out, nullptr, 1);
  EXPECT_EQ(out[0], 0);
}

TEST(BinaryKernelTest, OverflowWrapsNotUb) {
  int32_t a[1] = {INT32_MAX};
  int32_t b[1] = {1};
  int32_t out[1];
  Reg().Binary(ScalarOp::kAdd, TypeId::kI32, OperandMode::kVecVec, false)(
      a, b, out, nullptr, 1);
  EXPECT_EQ(out[0], INT32_MIN);
}

TEST(BinaryKernelTest, ComparisonsProduceBoolBytes) {
  int64_t a[4] = {1, 5, 5, 9};
  int64_t b[4] = {5, 5, 5, 5};
  uint8_t out[4];
  Reg().Binary(ScalarOp::kLt, TypeId::kI64, OperandMode::kVecVec, false)(
      a, b, out, nullptr, 4);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  Reg().Binary(ScalarOp::kGe, TypeId::kI64, OperandMode::kVecVec, false)(
      a, b, out, nullptr, 4);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[3], 1);
}

TEST(BinaryKernelTest, BoolLogic) {
  uint8_t a[4] = {0, 0, 1, 1};
  uint8_t b[4] = {0, 1, 0, 1};
  uint8_t out[4];
  Reg().Binary(ScalarOp::kAnd, TypeId::kBool, OperandMode::kVecVec, false)(
      a, b, out, nullptr, 4);
  EXPECT_EQ(out[3], 1);
  EXPECT_EQ(out[1], 0);
  Reg().Binary(ScalarOp::kOr, TypeId::kBool, OperandMode::kVecVec, false)(
      a, b, out, nullptr, 4);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
}

TEST(BinaryKernelTest, UnsupportedCombosAreNull) {
  EXPECT_EQ(Reg().Binary(ScalarOp::kAdd, TypeId::kBool,
                         OperandMode::kVecVec, false),
            nullptr);
  EXPECT_EQ(Reg().Binary(ScalarOp::kMod, TypeId::kF64,
                         OperandMode::kVecVec, false),
            nullptr);
}

// ---------------------------------------------------------------------------
// Unary / cast
// ---------------------------------------------------------------------------

TEST(UnaryKernelTest, NegAbsSqrtHash) {
  int64_t a[3] = {-5, 0, 7};
  int64_t out_i[3];
  Reg().Unary(ScalarOp::kNeg, TypeId::kI64, false)(a, nullptr, out_i, nullptr,
                                                   3);
  EXPECT_EQ(out_i[0], 5);
  EXPECT_EQ(out_i[2], -7);
  Reg().Unary(ScalarOp::kAbs, TypeId::kI64, false)(a, nullptr, out_i, nullptr,
                                                   3);
  EXPECT_EQ(out_i[0], 5);
  EXPECT_EQ(out_i[2], 7);

  double df[2] = {4.0, 9.0};
  double out_f[2];
  Reg().Unary(ScalarOp::kSqrt, TypeId::kF64, false)(df, nullptr, out_f,
                                                    nullptr, 2);
  EXPECT_DOUBLE_EQ(out_f[0], 2.0);
  EXPECT_DOUBLE_EQ(out_f[1], 3.0);

  // sqrt over ints yields doubles.
  int64_t di[1] = {16};
  Reg().Unary(ScalarOp::kSqrt, TypeId::kI64, false)(di, nullptr, out_f,
                                                    nullptr, 1);
  EXPECT_DOUBLE_EQ(out_f[0], 4.0);

  int64_t h1[2] = {1, 2};
  int64_t oh[2];
  Reg().Unary(ScalarOp::kHash, TypeId::kI64, false)(h1, nullptr, oh, nullptr,
                                                    2);
  EXPECT_NE(oh[0], oh[1]);
}

TEST(CastKernelTest, AllPairsRegistered) {
  for (size_t from = 0; from < kNumTypes; ++from) {
    for (size_t to = 0; to < kNumTypes; ++to) {
      EXPECT_NE(Reg().Cast(static_cast<TypeId>(from), static_cast<TypeId>(to),
                           false),
                nullptr);
    }
  }
}

TEST(CastKernelTest, NarrowingAndWidening) {
  int64_t a[3] = {300, -1, 7};
  int16_t out16[3];
  Reg().Cast(TypeId::kI64, TypeId::kI16, false)(a, nullptr, out16, nullptr, 3);
  EXPECT_EQ(out16[0], 300);
  EXPECT_EQ(out16[1], -1);
  double outd[3];
  Reg().Cast(TypeId::kI64, TypeId::kF64, false)(a, nullptr, outd, nullptr, 3);
  EXPECT_DOUBLE_EQ(outd[0], 300.0);
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

class FilterVariantTest : public ::testing::TestWithParam<FilterVariant> {};

TEST_P(FilterVariantTest, ScalarRhsSelection) {
  int64_t v[8] = {5, -1, 7, 0, 9, -3, 2, 10};
  int64_t c = 2;
  sel_t sel[8];
  FilterKernelFn fn =
      Reg().Filter(ScalarOp::kGt, TypeId::kI64, true, false, GetParam());
  ASSERT_NE(fn, nullptr);
  uint32_t count = fn(v, &c, nullptr, 8, sel);
  ASSERT_EQ(count, 4u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 2u);
  EXPECT_EQ(sel[2], 4u);
  EXPECT_EQ(sel[3], 7u);
}

TEST_P(FilterVariantTest, ComposesWithInputSelection) {
  int64_t v[8] = {5, -1, 7, 0, 9, -3, 2, 10};
  int64_t c = 2;
  sel_t in_sel[4] = {0, 1, 4, 6};  // candidates
  sel_t out_sel[8];
  FilterKernelFn fn =
      Reg().Filter(ScalarOp::kGt, TypeId::kI64, true, true, GetParam());
  uint32_t count = fn(v, &c, in_sel, 4, out_sel);
  ASSERT_EQ(count, 2u);
  EXPECT_EQ(out_sel[0], 0u);
  EXPECT_EQ(out_sel[1], 4u);
}

TEST_P(FilterVariantTest, EmptyAndFull) {
  int64_t v[4] = {1, 2, 3, 4};
  int64_t lo = 0, hi = 10;
  sel_t sel[4];
  FilterKernelFn fn =
      Reg().Filter(ScalarOp::kGt, TypeId::kI64, true, false, GetParam());
  EXPECT_EQ(fn(v, &hi, nullptr, 4, sel), 0u);
  EXPECT_EQ(fn(v, &lo, nullptr, 4, sel), 4u);
}

INSTANTIATE_TEST_SUITE_P(BothVariants, FilterVariantTest,
                         ::testing::Values(FilterVariant::kBranchless,
                                           FilterVariant::kBranching));

TEST(FilterTest, VariantsAgreeOnRandomData) {
  Rng rng(11);
  std::vector<int32_t> v(2000);
  for (auto& x : v) x = static_cast<int32_t>(rng.NextInRange(0, 100));
  int32_t c = 37;
  std::vector<sel_t> s1(2000), s2(2000);
  uint32_t c1 = Reg().Filter(ScalarOp::kLe, TypeId::kI32, true, false,
                             FilterVariant::kBranchless)(v.data(), &c, nullptr,
                                                         2000, s1.data());
  uint32_t c2 = Reg().Filter(ScalarOp::kLe, TypeId::kI32, true, false,
                             FilterVariant::kBranching)(v.data(), &c, nullptr,
                                                        2000, s2.data());
  ASSERT_EQ(c1, c2);
  for (uint32_t i = 0; i < c1; ++i) ASSERT_EQ(s1[i], s2[i]);
}

TEST(BoolToSelTest, ConvertsBitVector) {
  uint8_t b[6] = {1, 0, 0, 1, 1, 0};
  sel_t sel[6];
  uint32_t count = Reg().BoolToSel(false)(b, nullptr, nullptr, 6, sel);
  ASSERT_EQ(count, 3u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 3u);
  EXPECT_EQ(sel[2], 4u);
}

// ---------------------------------------------------------------------------
// Fold / gather / scatter / condense
// ---------------------------------------------------------------------------

TEST(FoldKernelTest, SumMinMaxMul) {
  int64_t v[5] = {3, -1, 7, 2, 2};
  int64_t acc = 0;
  Reg().Fold(ScalarOp::kAdd, TypeId::kI64)(v, nullptr, 5, &acc);
  EXPECT_EQ(acc, 13);
  acc = INT64_MAX;
  Reg().Fold(ScalarOp::kMin, TypeId::kI64)(v, nullptr, 5, &acc);
  EXPECT_EQ(acc, -1);
  acc = INT64_MIN;
  Reg().Fold(ScalarOp::kMax, TypeId::kI64)(v, nullptr, 5, &acc);
  EXPECT_EQ(acc, 7);
  acc = 1;
  Reg().Fold(ScalarOp::kMul, TypeId::kI64)(v, nullptr, 5, &acc);
  EXPECT_EQ(acc, 3 * -1 * 7 * 2 * 2);
}

TEST(FoldKernelTest, SelectiveFold) {
  int64_t v[5] = {10, 20, 30, 40, 50};
  sel_t sel[2] = {1, 3};
  int64_t acc = 0;
  Reg().Fold(ScalarOp::kAdd, TypeId::kI64)(v, sel, 2, &acc);
  EXPECT_EQ(acc, 60);
}

TEST(GatherKernelTest, GathersByIndex) {
  double base[5] = {0.5, 1.5, 2.5, 3.5, 4.5};
  int64_t idx[3] = {4, 0, 2};
  double out[3];
  Reg().GatherI64Idx(TypeId::kF64, false)(base, idx, out, nullptr, 3);
  EXPECT_DOUBLE_EQ(out[0], 4.5);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 2.5);
}

TEST(ScatterKernelTest, CombineModes) {
  int64_t base[4] = {0, 0, 0, 100};
  int64_t idx[3] = {1, 1, 3};
  int64_t vals[3] = {5, 7, 1};
  Reg().Scatter(ScalarOp::kAdd, TypeId::kI64)(idx, vals, base, nullptr, 3);
  EXPECT_EQ(base[1], 12);
  EXPECT_EQ(base[3], 101);
  int64_t base2[2] = {50, 50};
  int64_t idx2[2] = {0, 0};
  int64_t vals2[2] = {10, 99};
  // Overwrite combine (kCast sentinel): last write wins.
  Reg().Scatter(ScalarOp::kCast, TypeId::kI64)(idx2, vals2, base2, nullptr, 2);
  EXPECT_EQ(base2[0], 99);
  Reg().Scatter(ScalarOp::kMin, TypeId::kI64)(idx2, vals2, base2, nullptr, 2);
  EXPECT_EQ(base2[0], 10);
}

TEST(CondenseKernelTest, MaterializesSelection) {
  int32_t v[6] = {9, 8, 7, 6, 5, 4};
  sel_t sel[3] = {1, 3, 5};
  int32_t out[3];
  Reg().Condense(TypeId::kI32)(v, nullptr, out, sel, 3);
  EXPECT_EQ(out[0], 8);
  EXPECT_EQ(out[1], 6);
  EXPECT_EQ(out[2], 4);
}

TEST(KernelTest, ZeroLengthIsNoop) {
  int64_t v[1] = {1};
  int64_t out[1] = {42};
  Reg().Binary(ScalarOp::kAdd, TypeId::kI64, OperandMode::kVecVec, false)(
      v, v, out, nullptr, 0);
  EXPECT_EQ(out[0], 42);
  sel_t sel[1];
  EXPECT_EQ(Reg().Filter(ScalarOp::kGt, TypeId::kI64, true, false)(
                v, v, nullptr, 0, sel),
            0u);
}

}  // namespace
}  // namespace avm::interp
