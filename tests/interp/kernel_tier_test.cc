// SIMD kernel tier tests: runtime ISA detection, tier resolution, and the
// exhaustive scalar-vs-SIMD parity sweep — every registered (op, type,
// operand-mode, selectivity, variant) combination, random data, awkward
// lengths (0, 1, lane-1, lane+1, ...) and element-misaligned bases, with
// bit-identical outputs and qualifying counts against the scalar tier.
//
// Run under every supported AVM_KERNEL_TIER value in CI; the parameterized
// parity suite additionally compares all tiers inside one process via
// KernelRegistry::ForTier.
#include "interp/kernel_tier.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "dsl/builder.h"
#include "dsl/typecheck.h"
#include "interp/interpreter.h"
#include "interp/kernels.h"
#include "interp/kernels_simd.h"
#include "util/cpu_info.h"
#include "util/rng.h"

namespace avm::interp {
namespace {

using dsl::ScalarOp;

// ---------------------------------------------------------------------------
// Detection / resolution
// ---------------------------------------------------------------------------

TEST(KernelTierTest, TierNamesRoundTrip) {
  EXPECT_STREQ(TierName(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(TierName(KernelTier::kSse2), "sse2");
  EXPECT_STREQ(TierName(KernelTier::kAvx2), "avx2");
  EXPECT_EQ(ParseKernelTier("scalar"), KernelTier::kScalar);
  EXPECT_EQ(ParseKernelTier("sse2"), KernelTier::kSse2);
  EXPECT_EQ(ParseKernelTier("avx2"), KernelTier::kAvx2);
  EXPECT_EQ(ParseKernelTier("bogus"), KernelTier::kAuto);
  EXPECT_EQ(ParseKernelTier(nullptr), KernelTier::kAuto);
}

TEST(KernelTierTest, CpuProbeIsConsistent) {
  const CpuInfo& cpu = CpuInfo::Host();
#if defined(__x86_64__)
  // SSE2 is architecturally guaranteed on x86-64.
  EXPECT_TRUE(cpu.has_sse2);
  EXPECT_FALSE(cpu.has_neon);
#endif
  if (cpu.has_avx512f) EXPECT_GE(cpu.simd_width_bytes, 64u);
  if (cpu.has_avx2) EXPECT_GE(cpu.simd_width_bytes, 32u);
  if (cpu.has_sse2 || cpu.has_neon) EXPECT_GE(cpu.simd_width_bytes, 16u);
}

TEST(KernelTierTest, BestTierMatchesProbeAndBuild) {
  const CpuInfo& cpu = CpuInfo::Host();
  const KernelTier best = BestSupportedTier();
  if (cpu.has_avx2 && Avx2Kernels().available) {
    EXPECT_EQ(best, KernelTier::kAvx2);
  } else if ((cpu.has_sse2 || cpu.has_neon) && Sse2Kernels().available) {
    EXPECT_EQ(best, KernelTier::kSse2);
  } else {
    EXPECT_EQ(best, KernelTier::kScalar);
  }
}

TEST(KernelTierTest, SupportedTiersAscendFromScalar) {
  const std::vector<KernelTier> tiers = SupportedTiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), KernelTier::kScalar);
  EXPECT_EQ(tiers.back(), BestSupportedTier());
  for (size_t i = 0; i < tiers.size(); ++i) {
    EXPECT_EQ(tiers[i], static_cast<KernelTier>(i));
  }
}

TEST(KernelTierTest, ResolutionClampsToBest) {
  const KernelTier best = BestSupportedTier();
  EXPECT_EQ(ResolveKernelTier(KernelTier::kAuto), ActiveKernelTier());
  EXPECT_EQ(ResolveKernelTier(KernelTier::kScalar), KernelTier::kScalar);
  EXPECT_LE(static_cast<uint8_t>(ResolveKernelTier(KernelTier::kAvx2)),
            static_cast<uint8_t>(best));
  EXPECT_LE(static_cast<uint8_t>(ActiveKernelTier()),
            static_cast<uint8_t>(best));
}

TEST(KernelTierTest, RegistriesCarryTheirTier) {
  EXPECT_EQ(KernelRegistry::Get().tier(), ActiveKernelTier());
  EXPECT_EQ(&KernelRegistry::Get(), &KernelRegistry::ForTier(KernelTier::kAuto));
  for (KernelTier t : SupportedTiers()) {
    const KernelRegistry& reg = KernelRegistry::ForTier(t);
    EXPECT_EQ(reg.tier(), t);
    // The slot census is tier-independent: overlay replaces implementations,
    // it never adds or removes slots.
    EXPECT_EQ(reg.NumRegistered(),
              KernelRegistry::ForTier(KernelTier::kScalar).NumRegistered());
  }
}

TEST(KernelTierTest, SimdTiersActuallyOverlayFilterKernels) {
  for (KernelTier t : SupportedTiers()) {
    if (t == KernelTier::kScalar) continue;
    const KernelRegistry& simd = KernelRegistry::ForTier(t);
    const KernelRegistry& scalar = KernelRegistry::ForTier(KernelTier::kScalar);
    EXPECT_NE(simd.Filter(ScalarOp::kLt, TypeId::kI32, true, false),
              scalar.Filter(ScalarOp::kLt, TypeId::kI32, true, false))
        << "tier " << TierName(t) << " left the i32 filter slot scalar";
    // Selective slots stay scalar under every tier.
    EXPECT_EQ(simd.Filter(ScalarOp::kLt, TypeId::kI32, true, true),
              scalar.Filter(ScalarOp::kLt, TypeId::kI32, true, true));
  }
}

// ---------------------------------------------------------------------------
// Exhaustive scalar-vs-SIMD parity
// ---------------------------------------------------------------------------

// Lengths bracketing every lane boundary of both SIMD widths (16B and 32B
// vectors over 4/8-byte elements → lane counts 2, 4, 8), plus larger sizes
// exercising full main loops with tails.
const std::vector<uint32_t>& AwkwardLengths() {
  static const std::vector<uint32_t> kLengths = {
      0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 333};
  return kLengths;
}

// Element offsets applied to every buffer base so SIMD loads/stores hit
// unaligned addresses.
constexpr uint32_t kOffsets[] = {0, 1, 3};

template <typename T>
T RandomValue(Rng& rng) {
  if constexpr (std::is_integral_v<T>) {
    // Full-range values exercise wrap-around arithmetic.
    return static_cast<T>(rng.NextInRange(std::numeric_limits<int32_t>::min(),
                                          std::numeric_limits<int32_t>::max()));
  } else {
    // Quarter-integers: exactly representable, so every arithmetic kernel
    // (and every fold order) is exact → bit-identical across tiers.
    return static_cast<T>(rng.NextInRange(-4000, 4000)) / T(4);
  }
}

class TierParityTest : public ::testing::TestWithParam<KernelTier> {
 protected:
  const KernelRegistry& Tier() { return KernelRegistry::ForTier(GetParam()); }
  const KernelRegistry& Scalar() {
    return KernelRegistry::ForTier(KernelTier::kScalar);
  }
};

template <typename T>
void CheckBinaryParity(const KernelRegistry& tier,
                       const KernelRegistry& scalar) {
  const TypeId t = TypeIdOf<T>::value;
  Rng rng(0xB1A5 + static_cast<uint64_t>(t));
  for (size_t op = 0; op < kNumKernelOps; ++op) {
    const auto sop = static_cast<ScalarOp>(op);
    for (size_t m = 0; m < 3; ++m) {
      const auto mode = static_cast<OperandMode>(m);
      PrimKernelFn f_t = tier.Binary(sop, t, mode, false);
      PrimKernelFn f_s = scalar.Binary(sop, t, mode, false);
      ASSERT_EQ(f_t == nullptr, f_s == nullptr)
          << "op " << op << " registered in one tier only";
      if (f_t == nullptr || f_t == f_s) continue;  // no SIMD overlay
      for (uint32_t n : AwkwardLengths()) {
        for (uint32_t off : kOffsets) {
          std::vector<T> a(n + off), b(n + off);
          for (auto& x : a) x = RandomValue<T>(rng);
          for (auto& x : b) x = RandomValue<T>(rng);
          if (sop == ScalarOp::kDiv) {
            for (auto& x : b) {
              if (x == T(0)) x = T(1);
            }
          }
          // Comparisons write uint8; 8 bytes/elem covers every output type.
          // +8 spare bytes so the n==0 buffers still have non-null data().
          std::vector<uint8_t> o1((n + off) * 8 + 8, 0), o2((n + off) * 8 + 8, 0);
          f_t(a.data() + off, b.data() + off, o1.data() + off * 8, nullptr, n);
          f_s(a.data() + off, b.data() + off, o2.data() + off * 8, nullptr, n);
          ASSERT_EQ(std::memcmp(o1.data(), o2.data(), o1.size()), 0)
              << "binary op " << op << " type " << static_cast<int>(t)
              << " mode " << m << " n=" << n << " off=" << off;
        }
      }
    }
  }
}

TEST_P(TierParityTest, BinaryKernelsBitIdentical) {
  CheckBinaryParity<int32_t>(Tier(), Scalar());
  CheckBinaryParity<int64_t>(Tier(), Scalar());
  CheckBinaryParity<float>(Tier(), Scalar());
  CheckBinaryParity<double>(Tier(), Scalar());
}

template <typename T>
void CheckUnaryParity(const KernelRegistry& tier,
                      const KernelRegistry& scalar) {
  const TypeId t = TypeIdOf<T>::value;
  Rng rng(0x0A5 + static_cast<uint64_t>(t));
  for (size_t op = 0; op < kNumKernelOps; ++op) {
    const auto sop = static_cast<ScalarOp>(op);
    PrimKernelFn f_t = tier.Unary(sop, t, false);
    PrimKernelFn f_s = scalar.Unary(sop, t, false);
    ASSERT_EQ(f_t == nullptr, f_s == nullptr);
    if (f_t == nullptr || f_t == f_s) continue;
    for (uint32_t n : AwkwardLengths()) {
      for (uint32_t off : kOffsets) {
        std::vector<T> a(n + off);
        for (auto& x : a) x = RandomValue<T>(rng);
        if (n > 0) a[off] = T(0);  // cover -0.0 / abs(0) edge
        std::vector<uint8_t> o1((n + off) * 8 + 8, 0), o2((n + off) * 8 + 8, 0);
        f_t(a.data() + off, nullptr, o1.data() + off * 8, nullptr, n);
        f_s(a.data() + off, nullptr, o2.data() + off * 8, nullptr, n);
        ASSERT_EQ(std::memcmp(o1.data(), o2.data(), o1.size()), 0)
            << "unary op " << op << " type " << static_cast<int>(t)
            << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST_P(TierParityTest, UnaryKernelsBitIdentical) {
  CheckUnaryParity<int32_t>(Tier(), Scalar());
  CheckUnaryParity<int64_t>(Tier(), Scalar());
  CheckUnaryParity<float>(Tier(), Scalar());
  CheckUnaryParity<double>(Tier(), Scalar());
}

template <typename T>
void CheckFilterParity(const KernelRegistry& tier,
                       const KernelRegistry& scalar) {
  const TypeId t = TypeIdOf<T>::value;
  Rng rng(0xF1 + static_cast<uint64_t>(t));
  const ScalarOp cmps[] = {ScalarOp::kEq, ScalarOp::kNe, ScalarOp::kLt,
                           ScalarOp::kLe, ScalarOp::kGt, ScalarOp::kGe};
  // Thresholds into uniform [0, 1000) data: ~0%, 2%, 50%, 98%, 100%
  // qualifying for the order comparisons.
  const int64_t thresholds[] = {0, 20, 500, 980, 1000};
  for (ScalarOp cmp : cmps) {
    for (bool rhs_scalar : {true, false}) {
      for (FilterVariant variant :
           {FilterVariant::kBranchless, FilterVariant::kBranching}) {
        FilterKernelFn f_t = tier.Filter(cmp, t, rhs_scalar, false, variant);
        FilterKernelFn f_s = scalar.Filter(cmp, t, rhs_scalar, false, variant);
        ASSERT_NE(f_t, nullptr);
        ASSERT_NE(f_s, nullptr);
        if (f_t == f_s) continue;
        for (uint32_t n : AwkwardLengths()) {
          for (int64_t thr : thresholds) {
            for (uint32_t off : kOffsets) {
              std::vector<T> a(n + off), b(n + off + 1);
              for (auto& x : a) {
                x = static_cast<T>(rng.NextInRange(0, 999));
              }
              for (auto& x : b) x = static_cast<T>(thr);
              std::vector<sel_t> s1(n + 1, 0xDEAD), s2(n + 1, 0xDEAD);
              const uint32_t c1 = f_t(a.data() + off, b.data() + off, nullptr,
                                      n, s1.data());
              const uint32_t c2 = f_s(a.data() + off, b.data() + off, nullptr,
                                      n, s2.data());
              ASSERT_EQ(c1, c2)
                  << "filter cmp " << static_cast<int>(cmp) << " type "
                  << static_cast<int>(t) << " rhs_scalar=" << rhs_scalar
                  << " variant=" << static_cast<int>(variant) << " n=" << n
                  << " thr=" << thr << " off=" << off;
              ASSERT_EQ(std::memcmp(s1.data(), s2.data(), c1 * sizeof(sel_t)),
                        0)
                  << "selection vectors differ, cmp " << static_cast<int>(cmp)
                  << " n=" << n << " thr=" << thr;
            }
          }
        }
      }
    }
  }
}

TEST_P(TierParityTest, FilterKernelsBitIdentical) {
  CheckFilterParity<int32_t>(Tier(), Scalar());
  CheckFilterParity<int64_t>(Tier(), Scalar());
  CheckFilterParity<float>(Tier(), Scalar());
  CheckFilterParity<double>(Tier(), Scalar());
}

TEST_P(TierParityTest, BoolToSelBitIdentical) {
  FilterKernelFn f_t = Tier().BoolToSel(false);
  FilterKernelFn f_s = Scalar().BoolToSel(false);
  if (f_t == f_s) return;
  Rng rng(0xB001);
  for (uint32_t n : AwkwardLengths()) {
    for (uint32_t density : {0u, 5u, 50u, 95u, 100u}) {
      std::vector<uint8_t> bools(n + 1);
      for (auto& x : bools) {
        x = rng.NextInRange(0, 99) < static_cast<int64_t>(density) ? 1 : 0;
      }
      std::vector<sel_t> s1(n + 1, 0xDEAD), s2(n + 1, 0xDEAD);
      const uint32_t c1 = f_t(bools.data(), nullptr, nullptr, n, s1.data());
      const uint32_t c2 = f_s(bools.data(), nullptr, nullptr, n, s2.data());
      ASSERT_EQ(c1, c2) << "bool→sel n=" << n << " density=" << density;
      ASSERT_EQ(std::memcmp(s1.data(), s2.data(), c1 * sizeof(sel_t)), 0);
    }
  }
}

template <typename T>
void CheckFoldParity(const KernelRegistry& tier, const KernelRegistry& scalar) {
  const TypeId t = TypeIdOf<T>::value;
  Rng rng(0xF01D + static_cast<uint64_t>(t));
  const ScalarOp ops[] = {ScalarOp::kAdd, ScalarOp::kMin, ScalarOp::kMax,
                          ScalarOp::kMul};
  for (ScalarOp op : ops) {
    FoldKernelFn f_t = tier.Fold(op, t);
    FoldKernelFn f_s = scalar.Fold(op, t);
    ASSERT_EQ(f_t == nullptr, f_s == nullptr);
    if (f_t == nullptr || f_t == f_s) continue;
    for (uint32_t n : AwkwardLengths()) {
      for (uint32_t off : kOffsets) {
        // Small integer-valued data: integer folds wrap associatively and
        // float sums stay exact, so any reduction order is bit-identical.
        std::vector<T> v(n + off);
        for (auto& x : v) x = static_cast<T>(rng.NextInRange(-100, 100));
        T acc1 = T(0), acc2 = T(0);
        f_t(v.data() + off, nullptr, n, &acc1);
        f_s(v.data() + off, nullptr, n, &acc2);
        ASSERT_EQ(std::memcmp(&acc1, &acc2, sizeof(T)), 0)
            << "fold op " << static_cast<int>(op) << " type "
            << static_cast<int>(t) << " n=" << n << " off=" << off;
        // Selective folds must take the scalar sequential path exactly.
        if (n >= 2) {
          std::vector<sel_t> sel;
          for (uint32_t i = 0; i < n; i += 2) sel.push_back(i);
          acc1 = acc2 = T(1);
          f_t(v.data() + off, sel.data(), static_cast<uint32_t>(sel.size()),
              &acc1);
          f_s(v.data() + off, sel.data(), static_cast<uint32_t>(sel.size()),
              &acc2);
          ASSERT_EQ(std::memcmp(&acc1, &acc2, sizeof(T)), 0)
              << "selective fold op " << static_cast<int>(op) << " n=" << n;
        }
      }
    }
  }
}

TEST_P(TierParityTest, FoldKernelsBitIdentical) {
  CheckFoldParity<int32_t>(Tier(), Scalar());
  CheckFoldParity<int64_t>(Tier(), Scalar());
  CheckFoldParity<float>(Tier(), Scalar());
  CheckFoldParity<double>(Tier(), Scalar());
}

template <typename T>
void CheckGatherCondenseParity(const KernelRegistry& tier,
                               const KernelRegistry& scalar) {
  const TypeId t = TypeIdOf<T>::value;
  Rng rng(0x6A + static_cast<uint64_t>(t));
  const uint32_t base_n = 257;
  std::vector<T> base(base_n);
  for (auto& x : base) x = RandomValue<T>(rng);

  PrimKernelFn g_t = tier.GatherI64Idx(t, false);
  PrimKernelFn g_s = scalar.GatherI64Idx(t, false);
  if (g_t != g_s) {
    for (uint32_t n : AwkwardLengths()) {
      std::vector<int64_t> idx(n);
      for (auto& i : idx) i = rng.NextInRange(0, base_n - 1);
      std::vector<T> o1(n + 1, T(42)), o2(n + 1, T(42));
      g_t(base.data(), idx.data(), o1.data(), nullptr, n);
      g_s(base.data(), idx.data(), o2.data(), nullptr, n);
      ASSERT_EQ(std::memcmp(o1.data(), o2.data(), o1.size() * sizeof(T)), 0)
          << "gather type " << static_cast<int>(t) << " n=" << n;
    }
  }

  PrimKernelFn c_t = tier.Condense(t);
  PrimKernelFn c_s = scalar.Condense(t);
  if (c_t != c_s) {
    for (uint32_t n : AwkwardLengths()) {
      std::vector<sel_t> sel(n);
      for (auto& i : sel) {
        i = static_cast<sel_t>(rng.NextInRange(0, base_n - 1));
      }
      std::vector<T> o1(n + 1, T(42)), o2(n + 1, T(42));
      c_t(base.data(), nullptr, o1.data(), sel.data(), n);
      c_s(base.data(), nullptr, o2.data(), sel.data(), n);
      ASSERT_EQ(std::memcmp(o1.data(), o2.data(), o1.size() * sizeof(T)), 0)
          << "condense type " << static_cast<int>(t) << " n=" << n;
    }
  }
}

TEST_P(TierParityTest, GatherCondenseBitIdentical) {
  CheckGatherCondenseParity<int32_t>(Tier(), Scalar());
  CheckGatherCondenseParity<int64_t>(Tier(), Scalar());
  CheckGatherCondenseParity<float>(Tier(), Scalar());
  CheckGatherCondenseParity<double>(Tier(), Scalar());
}

INSTANTIATE_TEST_SUITE_P(SupportedTiers, TierParityTest,
                         ::testing::ValuesIn(SupportedTiers()),
                         [](const ::testing::TestParamInfo<KernelTier>& info) {
                           return TierName(info.param);
                         });

// ---------------------------------------------------------------------------
// Micro-adaptive scalar-vs-SIMD selection
// ---------------------------------------------------------------------------

dsl::Program FilterProgram(int64_t n, int64_t threshold) {
  dsl::Program p = dsl::MakeFilterPipeline(
      TypeId::kI64,
      dsl::Lambda({"x"}, dsl::Call(ScalarOp::kLt,
                                   {dsl::Var("x"), dsl::ConstI(threshold)})),
      n);
  Status st = dsl::TypeCheck(&p);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return p;
}

uint32_t FilterExprId(const dsl::Program& p) {
  // The filter node is the only kFilter skeleton in the pipeline.
  uint32_t id = 0;
  dsl::VisitExprs(p, [&](const dsl::ExprPtr& e) {
    if (e->kind == dsl::ExprKind::kSkeleton &&
        e->skeleton == dsl::SkeletonKind::kFilter) {
      id = e->id;
    }
  });
  return id;
}

int64_t RunFilterQuery(KernelTier tier, int64_t threshold,
                       std::vector<int64_t>* out_rows,
                       KernelTier* preferred_tier = nullptr,
                       FilterFlavor* preferred_flavor = nullptr) {
  const int64_t kN = 1 << 16;
  dsl::Program p = FilterProgram(kN, threshold);
  std::vector<int64_t> data(kN);
  Rng rng(7);
  for (auto& x : data) x = rng.NextInRange(0, 999);
  out_rows->assign(kN, -1);
  InterpreterOptions opts;
  opts.kernel_tier = tier;
  opts.filter_flavor = FilterFlavor::kAdaptive;
  Interpreter in(&p, opts);
  EXPECT_TRUE(
      in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kN)).ok());
  EXPECT_TRUE(in.BindData("out", DataBinding::Raw(TypeId::kI64,
                                                  out_rows->data(), kN, true))
                  .ok());
  EXPECT_TRUE(in.Run().ok());
  const uint32_t fid = FilterExprId(p);
  if (preferred_tier != nullptr) *preferred_tier = in.PreferredFilterTier(fid);
  if (preferred_flavor != nullptr) {
    *preferred_flavor = in.PreferredFilterFlavor(fid);
  }
  auto k = in.GetScalar("k");
  EXPECT_TRUE(k.ok());
  return k.value().AsI64();
}

TEST(AdaptiveTierTest, ScalarAndSimdTiersProduceIdenticalResults) {
  for (KernelTier tier : SupportedTiers()) {
    std::vector<int64_t> rows_scalar, rows_tier;
    const int64_t k_scalar =
        RunFilterQuery(KernelTier::kScalar, 300, &rows_scalar);
    const int64_t k_tier = RunFilterQuery(tier, 300, &rows_tier);
    EXPECT_EQ(k_scalar, k_tier) << "tier " << TierName(tier);
    EXPECT_EQ(rows_scalar, rows_tier) << "tier " << TierName(tier);
  }
}

TEST(AdaptiveTierTest, ChooserExploresScalarArmsOnSimdTiers) {
  const KernelTier best = BestSupportedTier();
  if (best == KernelTier::kScalar) {
    GTEST_SKIP() << "no SIMD tier on this host/build";
  }
  // Mid selectivity: many chunks, every arm (incl. the scalar fallbacks)
  // gets warmed up; the chooser must settle on a *valid* arm and report a
  // coherent (flavor, tier) pair — which arm wins is host-dependent.
  std::vector<int64_t> rows;
  KernelTier preferred = KernelTier::kAuto;
  FilterFlavor flavor = FilterFlavor::kAdaptive;
  RunFilterQuery(best, 500, &rows, &preferred, &flavor);
  EXPECT_TRUE(preferred == best || preferred == KernelTier::kScalar)
      << "preferred tier " << TierName(preferred);
  EXPECT_LE(static_cast<int>(flavor),
            static_cast<int>(FilterFlavor::kFullCompute));
}

TEST(AdaptiveTierTest, ScalarTierInterpreterKeepsThreeArms) {
  // On a scalar-tier interpreter the scalar fallback arms would duplicate
  // arms 0/1; the chooser must stay at the base 3 and never report a
  // preferred tier other than scalar.
  std::vector<int64_t> rows;
  KernelTier preferred = KernelTier::kAuto;
  RunFilterQuery(KernelTier::kScalar, 20, &rows, &preferred);
  EXPECT_EQ(preferred, KernelTier::kScalar);
}

}  // namespace
}  // namespace avm::interp
