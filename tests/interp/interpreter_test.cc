#include "interp/interpreter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsl/builder.h"
#include "dsl/parser.h"
#include "dsl/typecheck.h"

namespace avm::interp {
namespace {

using dsl::Program;

Program Checked(Program p) {
  Status st = dsl::TypeCheck(&p);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return p;
}

Program ParseChecked(const std::string& src) {
  auto p = dsl::ParseProgram(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return Checked(std::move(p).value());
}

TEST(InterpreterTest, Figure2EndToEnd) {
  const int64_t kN = 4096;
  Program p = Checked(dsl::MakeFigure2Program(kN));
  std::vector<int64_t> data(kN), v(kN, -999), w(kN, -999);
  for (int64_t i = 0; i < kN; ++i) data[i] = i - 2000;  // mixed signs

  Interpreter in(&p);
  ASSERT_TRUE(in.BindData("some_data",
                          DataBinding::Raw(TypeId::kI64, data.data(), kN))
                  .ok());
  ASSERT_TRUE(
      in.BindData("v", DataBinding::Raw(TypeId::kI64, v.data(), kN, true))
          .ok());
  ASSERT_TRUE(
      in.BindData("w", DataBinding::Raw(TypeId::kI64, w.data(), kN, true))
          .ok());
  ASSERT_TRUE(in.Run().ok());

  // v = 2 * data for all elements.
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(v[i], 2 * data[i]);
  // w = positive doubled values, condensed.
  size_t expect = 0;
  for (int64_t i = 0; i < kN; ++i) {
    if (2 * data[i] > 0) {
      ASSERT_EQ(w[expect], 2 * data[i]) << i;
      ++expect;
    }
  }
  // k (count written to w) must match.
  auto k = in.GetScalar("k");
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value().AsI64(), static_cast<int64_t>(expect));
}

TEST(InterpreterTest, Figure2FromParsedText) {
  Program p = ParseChecked(R"(
data some_data : i64
data v : i64 writable
data w : i64 writable
mut i
mut k
i := 0
k := 0
loop
  let input = read i some_data in
  let a = map (\x -> 2*x) input in
  let t = filter (\x -> x>0) a in
  let b = condense t
  write v i a
  write w k b
  i := i + len(a)
  k := k + len(b)
  if i >= 2000 then
    break
)");
  std::vector<int64_t> data(2000), v(2000), w(2000);
  for (int i = 0; i < 2000; ++i) data[i] = (i % 2 == 0) ? i : -i;
  Interpreter in(&p);
  ASSERT_TRUE(in.BindData("some_data",
                          DataBinding::Raw(TypeId::kI64, data.data(), 2000))
                  .ok());
  ASSERT_TRUE(
      in.BindData("v", DataBinding::Raw(TypeId::kI64, v.data(), 2000, true))
          .ok());
  ASSERT_TRUE(
      in.BindData("w", DataBinding::Raw(TypeId::kI64, w.data(), 2000, true))
          .ok());
  ASSERT_TRUE(in.Run().ok());
  EXPECT_EQ(v[10], 20);
  EXPECT_EQ(v[11], -22);
}

TEST(InterpreterTest, HypotPipelineMatchesStdSqrt) {
  const int64_t kN = 3000;
  Program p = Checked(dsl::MakeHypotPipeline(kN));
  std::vector<double> a(kN), b(kN), out(kN);
  for (int i = 0; i < kN; ++i) {
    a[i] = i * 0.25;
    b[i] = (kN - i) * 0.5;
  }
  Interpreter in(&p);
  ASSERT_TRUE(
      in.BindData("a", DataBinding::Raw(TypeId::kF64, a.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("b", DataBinding::Raw(TypeId::kF64, b.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kF64, out.data(), kN, true))
          .ok());
  ASSERT_TRUE(in.Run().ok());
  for (int i = 0; i < kN; ++i) {
    ASSERT_NEAR(out[i], std::sqrt(a[i] * a[i] + b[i] * b[i]), 1e-9);
  }
}

TEST(InterpreterTest, SumPipeline) {
  const int64_t kN = 5000;
  Program p = Checked(dsl::MakeSumPipeline(TypeId::kI64, kN));
  std::vector<int64_t> data(kN);
  int64_t expect = 0;
  for (int i = 0; i < kN; ++i) {
    data[i] = i * 3 - 1000;
    expect += data[i];
  }
  int64_t out[1] = {0};
  Interpreter in(&p);
  ASSERT_TRUE(
      in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out, 1, true)).ok());
  ASSERT_TRUE(in.Run().ok());
  EXPECT_EQ(out[0], expect);
}

TEST(InterpreterTest, ReadsFromCompressedColumn) {
  const uint32_t kN = 10000;
  Column col(TypeId::kI64, 2048);
  std::vector<int64_t> data(kN);
  for (uint32_t i = 0; i < kN; ++i) data[i] = 100 + (i % 50);
  ASSERT_TRUE(col.AppendValues(data.data(), kN).ok());
  ASSERT_GT(col.CompressionRatio(), 1.5);

  Program p = Checked(dsl::MakeMapPipeline(
      TypeId::kI64, dsl::Lambda({"x"}, dsl::Var("x") + dsl::ConstI(1)), kN));
  std::vector<int64_t> out(kN);
  Interpreter in(&p);
  ASSERT_TRUE(in.BindData("src", DataBinding::FromColumn(&col)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  ASSERT_TRUE(in.Run().ok());
  for (uint32_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], data[i] + 1);
  EXPECT_NE(in.LastSchemeOf("src"), Scheme::kPlain);
}

TEST(InterpreterTest, GenAndScatter) {
  Program p = ParseChecked(R"(
data acc : i64 writable
let idx = gen (\j -> j % 4) 16 in
let vals = gen (\j -> j) 16 in
scatter acc idx vals (\o n -> o + n)
)");
  int64_t acc[4] = {0, 0, 0, 0};
  Interpreter in(&p);
  ASSERT_TRUE(
      in.BindData("acc", DataBinding::Raw(TypeId::kI64, acc, 4, true)).ok());
  Status st = in.Run();
  ASSERT_TRUE(st.ok()) << st.ToString();
  // j sums by j%4: group g gets g + g+4 + g+8 + g+12 = 4g + 24.
  for (int g = 0; g < 4; ++g) EXPECT_EQ(acc[g], 4 * g + 24);
}

TEST(InterpreterTest, GatherFromDataArray) {
  Program p = ParseChecked(R"(
data base : f64
data out : f64 writable
let idx = gen (\j -> 9 - j) 10 in
let g = gather base idx in
write out 0 g
)");
  std::vector<double> base(10), out(10);
  for (int i = 0; i < 10; ++i) base[i] = i * 1.5;
  Interpreter in(&p);
  ASSERT_TRUE(
      in.BindData("base", DataBinding::Raw(TypeId::kF64, base.data(), 10))
          .ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kF64, out.data(), 10, true))
          .ok());
  ASSERT_TRUE(in.Run().ok());
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(out[i], base[9 - i]);
}

TEST(InterpreterTest, MergeJoinUnionDiff) {
  Program p = ParseChecked(R"(
data out : i64 writable
let a = gen (\j -> j * 2) 5 in
let b = gen (\j -> j * 3) 5 in
let m = merge_join a b in
write out 0 m
)");
  int64_t out[10] = {0};
  Interpreter in(&p);
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out, 10, true)).ok());
  ASSERT_TRUE(in.Run().ok());
  // a = {0,2,4,6,8}, b = {0,3,6,9,12}; intersection {0, 6}.
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 6);
}

TEST(InterpreterTest, FoldGeneralLambdaFallback) {
  // Non-single-op reduction exercises the scalar fold fallback.
  Program p = ParseChecked(R"(
data out : i64 writable
let v = gen (\j -> j + 1) 5 in
let s = fold (\acc x -> acc * 2 + x) 0 v in
let r = gen (\j -> s) 1 in
write out 0 r
)");
  int64_t out[1] = {0};
  Interpreter in(&p);
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out, 1, true)).ok());
  ASSERT_TRUE(in.Run().ok());
  // ((((0*2+1)*2+2)*2+3)*2+4)*2+5 = 57
  EXPECT_EQ(out[0], 57);
}

TEST(InterpreterTest, CaptureInLambda) {
  Program p = ParseChecked(R"(
data d : i64
data out : i64 writable
mut i
mut scale
i := 0
scale := 7
let v = read i d in
let m = map (\x -> x * scale) v in
write out 0 m
)");
  std::vector<int64_t> d(100), out(100);
  for (int i = 0; i < 100; ++i) d[i] = i;
  Interpreter in(&p);
  ASSERT_TRUE(
      in.BindData("d", DataBinding::Raw(TypeId::kI64, d.data(), 100)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), 100, true))
          .ok());
  ASSERT_TRUE(in.Run().ok());
  EXPECT_EQ(out[42], 42 * 7);
}

class FilterFlavorTest : public ::testing::TestWithParam<FilterFlavor> {};

TEST_P(FilterFlavorTest, AllFlavorsProduceSameSelection) {
  const int64_t kN = 8192;
  Program p = Checked(dsl::MakeFilterPipeline(
      TypeId::kI64,
      dsl::Lambda({"x"}, dsl::Call(dsl::ScalarOp::kLt,
                                   {dsl::Var("x"), dsl::ConstI(30)})),
      kN));
  std::vector<int64_t> data(kN), out(kN, -1);
  for (int i = 0; i < kN; ++i) data[i] = i % 100;
  InterpreterOptions opts;
  opts.filter_flavor = GetParam();
  Interpreter in(&p, opts);
  ASSERT_TRUE(
      in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  ASSERT_TRUE(in.Run().ok());
  // 30 of each 100 qualify.
  int64_t expect = 0;
  for (int i = 0; i < kN; ++i) expect += (i % 100) < 30 ? 1 : 0;
  auto k = in.GetScalar("k");
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value().AsI64(), expect);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[30], 0);  // second input block's first survivor
}

INSTANTIATE_TEST_SUITE_P(Flavors, FilterFlavorTest,
                         ::testing::Values(FilterFlavor::kBranchless,
                                           FilterFlavor::kBranching,
                                           FilterFlavor::kFullCompute,
                                           FilterFlavor::kAdaptive));

TEST(InterpreterTest, ProfilerCollectsPerOpStats) {
  const int64_t kN = 4096;
  Program p = Checked(dsl::MakeFigure2Program(kN));
  std::vector<int64_t> data(kN, 5), v(kN), w(kN);
  Interpreter in(&p);
  ASSERT_TRUE(in.BindData("some_data",
                          DataBinding::Raw(TypeId::kI64, data.data(), kN))
                  .ok());
  ASSERT_TRUE(
      in.BindData("v", DataBinding::Raw(TypeId::kI64, v.data(), kN, true))
          .ok());
  ASSERT_TRUE(
      in.BindData("w", DataBinding::Raw(TypeId::kI64, w.data(), kN, true))
          .ok());
  ASSERT_TRUE(in.Run().ok());
  const Profiler& prof = in.profiler();
  EXPECT_GE(prof.stats().size(), 5u);  // read/map/filter/condense/writes
  uint64_t total_tuples = 0;
  bool saw_filter_selectivity = false;
  for (const auto& [id, s] : prof.stats()) {
    total_tuples += s.tuples;
    if (s.label == "filter") {
      saw_filter_selectivity = true;
      EXPECT_DOUBLE_EQ(s.Selectivity(), 1.0);  // all 5s doubled are positive
    }
  }
  EXPECT_GT(total_tuples, 0u);
  EXPECT_TRUE(saw_filter_selectivity);
  EXPECT_FALSE(prof.ToString().empty());
  EXPECT_FALSE(prof.HotNodes().empty());
}

TEST(InterpreterTest, InjectionReplacesStatements) {
  // Hand-inject a "compiled" trace that computes a = 3*x instead of 2*x;
  // the interpreter must use it and skip the covered statement.
  const int64_t kN = 1024;
  Program p = Checked(dsl::MakeFigure2Program(kN));
  std::vector<int64_t> data(kN, 1), v(kN), w(kN);
  Interpreter in(&p);
  ASSERT_TRUE(in.BindData("some_data",
                          DataBinding::Raw(TypeId::kI64, data.data(), kN))
                  .ok());
  ASSERT_TRUE(
      in.BindData("v", DataBinding::Raw(TypeId::kI64, v.data(), kN, true))
          .ok());
  ASSERT_TRUE(
      in.BindData("w", DataBinding::Raw(TypeId::kI64, w.data(), kN, true))
          .ok());

  // Find the `let a = map ...` statement inside the loop.
  const dsl::Stmt* loop = nullptr;
  for (const auto& s : p.stmts) {
    if (s->kind == dsl::StmtKind::kLoop) loop = s.get();
  }
  ASSERT_NE(loop, nullptr);
  const dsl::Stmt* let_a = loop->body[1].get();
  ASSERT_EQ(let_a->var, "a");

  InjectedTrace tr;
  tr.name = "fake";
  tr.anchor_stmt_id = let_a->id;
  tr.covered_stmt_ids = {let_a->id};
  tr.run = [](Interpreter& it) -> Status {
    AVM_ASSIGN_OR_RETURN(Value input, it.GetVar("input"));
    ArrayPtr out = it.NewArray(TypeId::kI64);
    const int64_t* src = input.array->vec.Data<int64_t>();
    int64_t* dst = out->vec.Data<int64_t>();
    for (uint32_t i = 0; i < input.array->len; ++i) dst[i] = 3 * src[i];
    out->len = input.array->len;
    it.SetVar("a", Value::A(out));
    return Status::OK();
  };
  in.AddInjection(std::move(tr));
  ASSERT_TRUE(in.Run().ok());
  EXPECT_EQ(v[0], 3);  // injected 3*x, not 2*x
  EXPECT_EQ(in.injections()[0].invocations, kN / in.chunk_size());
}

TEST(InterpreterTest, InjectionFallbackWhenNotApplicable) {
  const int64_t kN = 1024;
  Program p = Checked(dsl::MakeFigure2Program(kN));
  std::vector<int64_t> data(kN, 1), v(kN), w(kN);
  Interpreter in(&p);
  ASSERT_TRUE(in.BindData("some_data",
                          DataBinding::Raw(TypeId::kI64, data.data(), kN))
                  .ok());
  ASSERT_TRUE(
      in.BindData("v", DataBinding::Raw(TypeId::kI64, v.data(), kN, true))
          .ok());
  ASSERT_TRUE(
      in.BindData("w", DataBinding::Raw(TypeId::kI64, w.data(), kN, true))
          .ok());
  const dsl::Stmt* loop = nullptr;
  for (const auto& s : p.stmts) {
    if (s->kind == dsl::StmtKind::kLoop) loop = s.get();
  }
  InjectedTrace tr;
  tr.name = "never-applicable";
  tr.anchor_stmt_id = loop->body[1]->id;
  tr.covered_stmt_ids = {loop->body[1]->id};
  tr.applicable = [](Interpreter&) { return false; };
  tr.run = [](Interpreter&) { return Status::Internal("must not run"); };
  in.AddInjection(std::move(tr));
  ASSERT_TRUE(in.Run().ok());
  EXPECT_EQ(v[0], 2);  // interpreted path
  EXPECT_EQ(in.injections()[0].invocations, 0u);
  EXPECT_GT(in.injections()[0].fallbacks, 0u);
}

TEST(InterpreterErrorTest, UnboundDataRejected) {
  Program p = Checked(dsl::MakeFigure2Program(64));
  Interpreter in(&p);
  EXPECT_TRUE(in.Run().IsInvalidArgument());
}

TEST(InterpreterErrorTest, TypeMismatchedBindingRejected) {
  Program p = Checked(dsl::MakeFigure2Program(64));
  std::vector<int32_t> wrong(64);
  Interpreter in(&p);
  EXPECT_TRUE(in.BindData("some_data",
                          DataBinding::Raw(TypeId::kI32, wrong.data(), 64))
                  .IsTypeError());
}

TEST(InterpreterErrorTest, WritePastEndRejected) {
  Program p = ParseChecked(R"(
data out : i64 writable
let g = gen (\j -> j) 10 in
write out 5 g
)");
  int64_t out[8];
  Interpreter in(&p);
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out, 8, true)).ok());
  EXPECT_TRUE(in.Run().IsOutOfRange());
}

TEST(InterpreterErrorTest, ScatterBoundsChecked) {
  Program p = ParseChecked(R"(
data acc : i64 writable
let idx = gen (\j -> j + 100) 4 in
let vals = gen (\j -> j) 4 in
scatter acc idx vals (\o n -> o + n)
)");
  int64_t acc[4] = {0};
  Interpreter in(&p);
  ASSERT_TRUE(
      in.BindData("acc", DataBinding::Raw(TypeId::kI64, acc, 4, true)).ok());
  EXPECT_TRUE(in.Run().IsOutOfRange());
}

TEST(InterpreterTest, PartialTailChunk) {
  // Data length not divisible by the chunk size: the final short chunk must
  // process correctly.
  const int64_t kN = 2500;  // 2 full chunks + 452
  Program p = Checked(dsl::MakeMapPipeline(
      TypeId::kI64, dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(5)), kN));
  std::vector<int64_t> data(kN), out(kN);
  for (int i = 0; i < kN; ++i) data[i] = i;
  Interpreter in(&p);
  ASSERT_TRUE(
      in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  ASSERT_TRUE(in.Run().ok());
  EXPECT_EQ(out[kN - 1], (kN - 1) * 5);
  EXPECT_EQ(in.loop_iterations(), 3u);
}

}  // namespace
}  // namespace avm::interp
