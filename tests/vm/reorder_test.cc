#include "vm/reorder.h"

#include <gtest/gtest.h>

namespace avm::vm {
namespace {

TEST(ReorderTest, InitialOrderIsIdentity) {
  SelectiveOpReorderer r(3);
  EXPECT_EQ(r.Order(), (std::vector<size_t>{0, 1, 2}));
}

TEST(ReorderTest, MoreSelectiveOpMovesFirst) {
  SelectiveOpReorderer r(2, /*resort_every=*/4);
  // Op 0 keeps 90%, op 1 keeps 10% at the same cost: op 1 must go first.
  for (int i = 0; i < 32; ++i) {
    r.Observe(0, 1000, 900, 1000);
    r.Observe(1, 1000, 100, 1000);
  }
  EXPECT_EQ(r.Order()[0], 1u);
  EXPECT_GT(r.resorts(), 0u);
}

TEST(ReorderTest, CostBalancesSelectivity) {
  SelectiveOpReorderer r(2, 4);
  // Op 0: keeps 50% at cost 1; op 1: keeps 40% at cost 100.
  // Rank 0 = 0.5/1 = 0.5; rank 1 = 0.6/100 = 0.006 -> op 0 first.
  for (int i = 0; i < 32; ++i) {
    r.Observe(0, 1000, 500, 1000);
    r.Observe(1, 1000, 400, 100000);
  }
  EXPECT_EQ(r.Order()[0], 0u);
}

TEST(ReorderTest, AdaptsToDriftingSelectivity) {
  SelectiveOpReorderer r(2, 4, /*ema_alpha=*/0.5);
  for (int i = 0; i < 32; ++i) {
    r.Observe(0, 1000, 100, 1000);  // op 0 selective first
    r.Observe(1, 1000, 900, 1000);
  }
  ASSERT_EQ(r.Order()[0], 0u);
  // Drift: selectivities swap.
  for (int i = 0; i < 64; ++i) {
    r.Observe(0, 1000, 900, 1000);
    r.Observe(1, 1000, 100, 1000);
  }
  EXPECT_EQ(r.Order()[0], 1u);
}

TEST(ReorderTest, ZeroInputObservationsIgnored) {
  SelectiveOpReorderer r(2, 1);
  r.Observe(0, 0, 0, 100);
  EXPECT_EQ(r.Order(), (std::vector<size_t>{0, 1}));
}

TEST(ReorderTest, SelectivityAndCostExposed) {
  SelectiveOpReorderer r(1, 100);
  r.Observe(0, 100, 25, 400);
  EXPECT_NEAR(r.SelectivityOf(0), 0.25, 1e-9);
  EXPECT_NEAR(r.CostOf(0), 4.0, 1e-9);
  EXPECT_GT(r.RankOf(0), 0.0);
}

}  // namespace
}  // namespace avm::vm
