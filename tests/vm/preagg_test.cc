#include "vm/preagg.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace avm::vm {
namespace {

std::map<int64_t, int64_t> Oracle(const std::vector<int64_t>& keys,
                                  const std::vector<int64_t>& values) {
  std::map<int64_t, int64_t> m;
  for (size_t i = 0; i < keys.size(); ++i) m[keys[i]] += values[i];
  return m;
}

void CheckAgainstOracle(AdaptiveSumAggregator& agg,
                        const std::vector<int64_t>& keys,
                        const std::vector<int64_t>& values) {
  auto expect = Oracle(keys, values);
  auto got = agg.Result();
  ASSERT_EQ(got.size(), expect.size());
  for (const auto& [k, v] : got) {
    ASSERT_TRUE(expect.contains(k)) << k;
    ASSERT_EQ(v, expect[k]) << "key " << k;
  }
}

TEST(PreAggTest, SmallDomainUsesArrayPath) {
  AdaptiveSumAggregator agg;
  Rng rng(1);
  std::vector<int64_t> keys(10000), values(10000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>(rng.NextBounded(6));
    values[i] = rng.NextInRange(-10, 10);
  }
  for (size_t off = 0; off < keys.size(); off += 1024) {
    uint32_t n = std::min<size_t>(1024, keys.size() - off);
    ASSERT_TRUE(agg.Consume(keys.data() + off, values.data() + off, n).ok());
  }
  EXPECT_TRUE(agg.using_array_path());
  CheckAgainstOracle(agg, keys, values);
}

TEST(PreAggTest, LargeDomainSwitchesToHash) {
  PreAggConfig cfg;
  cfg.max_direct_key = 256;
  cfg.decide_every = 2;
  AdaptiveSumAggregator agg(cfg);
  Rng rng(2);
  std::vector<int64_t> keys(20000), values(20000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>(rng.NextBounded(100000));
    values[i] = rng.NextInRange(0, 5);
  }
  for (size_t off = 0; off < keys.size(); off += 1024) {
    uint32_t n = std::min<size_t>(1024, keys.size() - off);
    ASSERT_TRUE(agg.Consume(keys.data() + off, values.data() + off, n).ok());
  }
  EXPECT_FALSE(agg.using_array_path());
  EXPECT_GT(agg.path_switches(), 0u);
  CheckAgainstOracle(agg, keys, values);
}

TEST(PreAggTest, NegativeKeysForceHashImmediately) {
  AdaptiveSumAggregator agg;
  std::vector<int64_t> keys{-5, 2, -5, 7};
  std::vector<int64_t> values{1, 2, 3, 4};
  ASSERT_TRUE(agg.Consume(keys.data(), values.data(), 4).ok());
  EXPECT_FALSE(agg.using_array_path());
  CheckAgainstOracle(agg, keys, values);
}

TEST(PreAggTest, DomainDriftMigratesPartialsCorrectly) {
  PreAggConfig cfg;
  cfg.max_direct_key = 64;
  cfg.decide_every = 1;
  AdaptiveSumAggregator agg(cfg);
  Rng rng(3);
  std::vector<int64_t> keys, values;
  // Phase 1: small keys (array path).
  for (int i = 0; i < 2000; ++i) {
    keys.push_back(static_cast<int64_t>(rng.NextBounded(32)));
    values.push_back(1);
  }
  // Phase 2: big keys appear (hash path; migrated partials must survive).
  for (int i = 0; i < 2000; ++i) {
    keys.push_back(static_cast<int64_t>(rng.NextBounded(100000)));
    values.push_back(1);
  }
  for (size_t off = 0; off < keys.size(); off += 256) {
    uint32_t n = std::min<size_t>(256, keys.size() - off);
    ASSERT_TRUE(agg.Consume(keys.data() + off, values.data() + off, n).ok());
  }
  CheckAgainstOracle(agg, keys, values);
}

TEST(PreAggTest, EmptyAggregation) {
  AdaptiveSumAggregator agg;
  EXPECT_TRUE(agg.Result().empty());
}

TEST(PreAggTest, ResultSortedByKey) {
  AdaptiveSumAggregator agg;
  std::vector<int64_t> keys{5, 1, 3, 1};
  std::vector<int64_t> values{1, 1, 1, 1};
  ASSERT_TRUE(agg.Consume(keys.data(), values.data(), 4).ok());
  auto r = agg.Result();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].first, 1);
  EXPECT_EQ(r[0].second, 2);
  EXPECT_EQ(r[2].first, 5);
}

TEST(PreAggTest, ManyChunksStressHashGrowth) {
  PreAggConfig cfg;
  cfg.max_direct_key = 16;
  cfg.decide_every = 1;
  AdaptiveSumAggregator agg(cfg);
  Rng rng(4);
  std::vector<int64_t> keys(100000), values(100000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>(rng.NextBounded(50000));
    values[i] = 1;
  }
  for (size_t off = 0; off < keys.size(); off += 4096) {
    uint32_t n = std::min<size_t>(4096, keys.size() - off);
    ASSERT_TRUE(agg.Consume(keys.data() + off, values.data() + off, n).ok());
  }
  int64_t total = 0;
  for (const auto& [k, v] : agg.Result()) total += v;
  EXPECT_EQ(total, 100000);
}

}  // namespace
}  // namespace avm::vm
