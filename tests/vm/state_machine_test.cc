#include "vm/state_machine.h"

#include <gtest/gtest.h>

namespace avm::vm {
namespace {

TEST(StateMachineTest, StartsInterpreting) {
  StateMachine sm;
  EXPECT_EQ(sm.state(), VmState::kInterpret);
  EXPECT_TRUE(sm.transitions().empty());
}

TEST(StateMachineTest, FullFig1Cycle) {
  StateMachine sm;
  EXPECT_TRUE(sm.Advance(VmState::kOptimize, 8));
  EXPECT_TRUE(sm.Advance(VmState::kGenerateCode, 8));
  EXPECT_TRUE(sm.Advance(VmState::kInjectFunctions, 8));
  EXPECT_TRUE(sm.Advance(VmState::kInterpret, 9));
  EXPECT_EQ(sm.state(), VmState::kInterpret);
  EXPECT_EQ(sm.transitions().size(), 4u);
}

TEST(StateMachineTest, IllegalEdgesRejected) {
  StateMachine sm;
  EXPECT_FALSE(sm.Advance(VmState::kGenerateCode, 0));   // skip Optimize
  EXPECT_FALSE(sm.Advance(VmState::kInjectFunctions, 0));
  EXPECT_TRUE(sm.Advance(VmState::kOptimize, 1));
  EXPECT_FALSE(sm.Advance(VmState::kInjectFunctions, 1));  // skip GenerateCode
  EXPECT_FALSE(sm.Advance(VmState::kOptimize, 1));         // self loop
}

TEST(StateMachineTest, OptimizeCanBailToInterpret) {
  StateMachine sm;
  ASSERT_TRUE(sm.Advance(VmState::kOptimize, 5));
  EXPECT_TRUE(sm.Advance(VmState::kInterpret, 5));
}

TEST(StateMachineTest, TimelineRendersTransitions) {
  StateMachine sm;
  sm.Advance(VmState::kOptimize, 8);
  sm.Advance(VmState::kGenerateCode, 8);
  std::string tl = sm.Timeline();
  EXPECT_NE(tl.find("Interpret -> Optimize"), std::string::npos);
  EXPECT_NE(tl.find("Optimize -> GenerateCode"), std::string::npos);
}

TEST(StateMachineTest, StateNames) {
  EXPECT_STREQ(VmStateName(VmState::kInterpret), "Interpret");
  EXPECT_STREQ(VmStateName(VmState::kInjectFunctions), "InjectFunctions");
}

}  // namespace
}  // namespace avm::vm
