#include "vm/compact_types.h"

#include <gtest/gtest.h>

namespace avm::vm {
namespace {

using dsl::ScalarOp;

TEST(BoundsTest, AddSubMul) {
  auto r = PropagateBounds(ScalarOp::kAdd, {0, 10}, {5, 20});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, 5);
  EXPECT_EQ(r->hi, 30);

  r = PropagateBounds(ScalarOp::kSub, {0, 10}, {5, 20});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, -20);
  EXPECT_EQ(r->hi, 5);

  r = PropagateBounds(ScalarOp::kMul, {-3, 4}, {-5, 6});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, -20);  // 4 * -5
  EXPECT_EQ(r->hi, 24);   // 4 * 6 (and 15 from -3 * -5 is smaller)
}

TEST(BoundsTest, Q1DiscPriceFitsI32) {
  // price in [90000, 10500000], (100 - disc) in [90, 100]:
  // product <= 1.05e9 < 2^31 — the paper's compact-types win on Q1.
  auto hundred_minus_disc =
      PropagateBounds(ScalarOp::kSub, {100, 100}, {0, 10});
  ASSERT_TRUE(hundred_minus_disc.has_value());
  auto dp = PropagateBounds(ScalarOp::kMul, {90000, 10500000},
                            *hundred_minus_disc);
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ(CompactTypeFor(*dp), TypeId::kI32);
  // Charge needs the next multiplication and overflows i32:
  auto charge = PropagateBounds(ScalarOp::kMul, *dp, {100, 108});
  ASSERT_TRUE(charge.has_value());
  EXPECT_EQ(CompactTypeFor(*charge), TypeId::kI64);
}

TEST(BoundsTest, OverflowDetected) {
  EXPECT_FALSE(PropagateBounds(ScalarOp::kMul, {0, INT64_MAX / 2},
                               {0, 4})
                   .has_value());
  EXPECT_FALSE(PropagateBounds(ScalarOp::kAdd, {0, INT64_MAX},
                               {1, 1})
                   .has_value());
  EXPECT_FALSE(PropagateBounds(ScalarOp::kNeg, {INT64_MIN, 0},
                               {0, 0})
                   .has_value());
}

TEST(BoundsTest, MinMax) {
  auto r = PropagateBounds(ScalarOp::kMin, {0, 10}, {-5, 3});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, -5);
  EXPECT_EQ(r->hi, 3);
  r = PropagateBounds(ScalarOp::kMax, {0, 10}, {-5, 3});
  EXPECT_EQ(r->lo, 0);
  EXPECT_EQ(r->hi, 10);
}

TEST(BoundsTest, ComparisonsAreBool01) {
  auto r = PropagateBounds(ScalarOp::kLt, {0, 10}, {0, 10});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, 0);
  EXPECT_EQ(r->hi, 1);
}

TEST(BoundsTest, AbsAndNeg) {
  auto r = PropagateBounds(ScalarOp::kAbs, {-7, 3}, {0, 0});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, 0);
  EXPECT_EQ(r->hi, 7);
  r = PropagateBounds(ScalarOp::kNeg, {-7, 3}, {0, 0});
  EXPECT_EQ(r->lo, -3);
  EXPECT_EQ(r->hi, 7);
}

TEST(CompactTypeTest, SmallestType) {
  EXPECT_EQ(CompactTypeFor({0, 100}), TypeId::kI8);
  EXPECT_EQ(CompactTypeFor({-200, 100}), TypeId::kI16);
  EXPECT_EQ(CompactTypeFor({0, 100000}), TypeId::kI32);
  EXPECT_EQ(CompactTypeFor({0, int64_t{1} << 40}), TypeId::kI64);
}

TEST(SumAccumulatorTest, WidthGrowsWithCount) {
  // Values in [1, 50] (quantity): 1000 rows fit i32, billions need i64.
  auto t = SumAccumulatorType({1, 50}, 1000);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, TypeId::kI32);
  t = SumAccumulatorType({1, 50}, 100'000'000);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, TypeId::kI64);
}

TEST(SumAccumulatorTest, OverflowImpossibleDetected) {
  EXPECT_FALSE(
      SumAccumulatorType({0, INT64_MAX / 2}, 1000).has_value());
}

TEST(SumAccumulatorTest, ZeroMagnitude) {
  auto t = SumAccumulatorType({0, 0}, UINT64_MAX);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, TypeId::kI8);
}

}  // namespace
}  // namespace avm::vm
