#include "vm/adaptive_vm.h"

#include <gtest/gtest.h>

#include "dsl/builder.h"
#include "dsl/typecheck.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"

namespace avm::vm {
namespace {

using interp::DataBinding;

struct Fig2Data {
  std::vector<int64_t> data, v, w;
};

Fig2Data MakeData(int64_t n) {
  Fig2Data d;
  d.data.resize(n);
  d.v.assign(n, -1);
  d.w.assign(n, -1);
  Rng rng(7);
  for (auto& x : d.data) x = rng.NextInRange(-50, 50);
  return d;
}

Status BindFig2(interp::Interpreter& in, Fig2Data* d) {
  const uint64_t n = d->data.size();
  AVM_RETURN_NOT_OK(in.BindData(
      "some_data", DataBinding::Raw(TypeId::kI64, d->data.data(), n)));
  AVM_RETURN_NOT_OK(
      in.BindData("v", DataBinding::Raw(TypeId::kI64, d->v.data(), n, true)));
  AVM_RETURN_NOT_OK(
      in.BindData("w", DataBinding::Raw(TypeId::kI64, d->w.data(), n, true)));
  return Status::OK();
}

TEST(AdaptiveVmTest, JitDisabledStillCorrect) {
  const int64_t kN = 32 * 1024;
  dsl::Program p = dsl::MakeFigure2Program(kN);
  ASSERT_TRUE(dsl::TypeCheck(&p).ok());
  VmOptions opts;
  opts.enable_jit = false;
  AdaptiveVm vm(&p, opts);
  Fig2Data d = MakeData(kN);
  ASSERT_TRUE(BindFig2(vm.interpreter(), &d).ok());
  ASSERT_TRUE(vm.Run().ok());
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(d.v[i], 2 * d.data[i]);
  EXPECT_EQ(vm.Report().traces_compiled, 0u);
  EXPECT_TRUE(vm.state_machine().transitions().empty());
}

TEST(AdaptiveVmTest, CompilesAndInjectsMidRun) {
  if (!jit::SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 64 * 1024;  // 64 chunks: warmup + compiled phase
  dsl::Program p = dsl::MakeFigure2Program(kN);
  ASSERT_TRUE(dsl::TypeCheck(&p).ok());
  VmOptions opts;
  opts.optimize_after_iterations = 4;
  AdaptiveVm vm(&p, opts);
  Fig2Data d = MakeData(kN);
  ASSERT_TRUE(BindFig2(vm.interpreter(), &d).ok());
  ASSERT_TRUE(vm.Run().ok());

  // Correctness is preserved through the mid-run strategy switch.
  size_t expect_w = 0;
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(d.v[i], 2 * d.data[i]);
    if (2 * d.data[i] > 0) {
      ASSERT_EQ(d.w[expect_w], 2 * d.data[i]);
      ++expect_w;
    }
  }
  VmReport report = vm.Report();
  EXPECT_GT(report.traces_compiled + report.disk_cache_hits, 0u);
  EXPECT_GT(report.injection_runs, 0u);
  // A warm persistent cache loads machine code without invoking a backend,
  // in which case zero compile wall time is the expected reading.
  if (report.disk_cache_hits == 0) {
    EXPECT_GT(report.compile_seconds, 0.0);
  }

  // The Fig. 1 cycle appears in the timeline.
  EXPECT_NE(report.state_timeline.find("Interpret -> Optimize"),
            std::string::npos);
  EXPECT_NE(report.state_timeline.find("GenerateCode -> InjectFunctions"),
            std::string::npos);
}

TEST(AdaptiveVmTest, SchemeChangeTriggersFallbackAndRespecialization) {
  if (!jit::SourceJit::Available()) GTEST_SKIP();
  // Column whose scheme flips from FOR to PLAIN mid-column: the FOR-
  // specialized trace must stop applying (fallback), and the recheck pass
  // must install a plain variant.
  const uint32_t kHalf = 64 * 1024;
  Column col(TypeId::kI64, 4096);
  DataGen gen(3);
  auto narrow = gen.UniformI64(kHalf, 1000, 1500);  // FOR blocks
  std::vector<int64_t> wide(kHalf);
  Rng rng(4);
  for (auto& x : wide) x = static_cast<int64_t>(rng.Next() >> 1);  // Plain
  for (uint32_t off = 0; off < kHalf; off += 4096) {
    ASSERT_TRUE(col.AppendBlockWithScheme(Scheme::kFor,
                                          narrow.data() + off, 4096)
                    .ok());
  }
  for (uint32_t off = 0; off < kHalf; off += 4096) {
    ASSERT_TRUE(col.AppendBlockWithScheme(Scheme::kPlain,
                                          wide.data() + off, 4096)
                    .ok());
  }
  const uint64_t kN = col.num_rows();

  dsl::Program p = dsl::MakeMapPipeline(
      TypeId::kI64, dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(2)),
      static_cast<int64_t>(kN));
  ASSERT_TRUE(dsl::TypeCheck(&p).ok());
  VmOptions opts;
  opts.optimize_after_iterations = 4;
  opts.recheck_interval = 8;
  opts.specialize_compression = true;
  AdaptiveVm vm(&p, opts);
  std::vector<int64_t> out(kN, 0);
  ASSERT_TRUE(
      vm.interpreter().BindData("src", DataBinding::FromColumn(&col)).ok());
  ASSERT_TRUE(vm.interpreter()
                  .BindData("out", DataBinding::Raw(TypeId::kI64, out.data(),
                                                    kN, true))
                  .ok());
  ASSERT_TRUE(vm.Run().ok());
  for (uint32_t i = 0; i < kHalf; ++i) ASSERT_EQ(out[i], narrow[i] * 2);
  for (uint32_t i = 0; i < kHalf; ++i) {
    ASSERT_EQ(out[kHalf + i], wide[i] * 2);
  }
  VmReport report = vm.Report();
  // Two situations compiled: FOR-specialized and plain.
  EXPECT_GE(report.traces_compiled + report.disk_cache_hits, 2u);
  EXPECT_GT(report.injection_fallbacks, 0u);
  EXPECT_GT(report.injection_runs, 0u);
}

TEST(AdaptiveVmTest, TraceCacheReusedAcrossSituationRecurrence) {
  if (!jit::SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 96 * 1024;
  dsl::Program p = dsl::MakeFigure2Program(kN);
  ASSERT_TRUE(dsl::TypeCheck(&p).ok());
  VmOptions opts;
  opts.optimize_after_iterations = 2;
  opts.recheck_interval = 16;  // several optimize passes over the run
  AdaptiveVm vm(&p, opts);
  Fig2Data d = MakeData(kN);
  ASSERT_TRUE(BindFig2(vm.interpreter(), &d).ok());
  ASSERT_TRUE(vm.Run().ok());
  // Recurrent passes must not recompile identical situations.
  EXPECT_LE(vm.Report().traces_compiled, 4u);
  EXPECT_GE(vm.trace_cache().size(), 1u);
}

TEST(AdaptiveVmTest, ShortRunStaysInterpreted) {
  if (!jit::SourceJit::Available()) GTEST_SKIP();
  // Fewer iterations than the optimize threshold: never compiles — the
  // paper's "interpret cold code and short-running programs".
  const int64_t kN = 2048;  // 2 iterations
  dsl::Program p = dsl::MakeFigure2Program(kN);
  ASSERT_TRUE(dsl::TypeCheck(&p).ok());
  VmOptions opts;
  opts.optimize_after_iterations = 100;
  AdaptiveVm vm(&p, opts);
  Fig2Data d = MakeData(kN);
  ASSERT_TRUE(BindFig2(vm.interpreter(), &d).ok());
  ASSERT_TRUE(vm.Run().ok());
  EXPECT_EQ(vm.Report().traces_compiled, 0u);
}

}  // namespace
}  // namespace avm::vm
