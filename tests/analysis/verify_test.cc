// Static-verifier unit tests: one deliberately malformed shape per rule id
// (docs/VERIFIER.md), plus the agreement contract — a hand-built trace the
// verifier rejects must also be declined by codegen, and the partitioner's
// own traces must be verifier-clean and compile.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/verify_program.h"
#include "analysis/verify_trace.h"
#include "dsl/builder.h"
#include "dsl/typecheck.h"
#include "ir/depgraph.h"
#include "jit/codegen.h"

namespace avm::analysis {
namespace {

using namespace dsl;  // NOLINT: builder DSL reads best unqualified

/// Wraps `body` in the canonical chunk loop (mut i; i = 0; loop { ...;
/// i += len(len_of); if (i >= 4096) break; }) and assigns node ids.
Program LoopProgram(std::vector<DataDecl> data, std::vector<StmtPtr> body,
                    const std::string& len_of = "v") {
  body.push_back(Assign(
      "i", Var("i") + Skeleton(SkeletonKind::kLen, {Var(len_of)})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(4096)}),
                    {Break()}));
  Program p;
  p.data = std::move(data);
  p.stmts.push_back(MutDef("i"));
  p.stmts.push_back(Assign("i", ConstI(0)));
  p.stmts.push_back(Loop(std::move(body)));
  p.AssignIds();
  return p;
}

StmtPtr ReadStmt(const std::string& var, const std::string& array) {
  return Let(var, Skeleton(SkeletonKind::kRead, {Var("i"), Var(array)}));
}

ExprPtr GtZeroFilter(const std::string& in) {
  return Skeleton(SkeletonKind::kFilter,
                  {Lambda({"x"}, Call(ScalarOp::kGt, {Var("x"), ConstI(0)})),
                   Var(in)});
}

ir::DepGraph BuildGraph(Program* p, bool typecheck = true) {
  if (typecheck) {
    Status st = dsl::TypeCheck(p);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  auto g = ir::DepGraph::Build(*p);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).ValueOrDie();
}

int NodeOf(const ir::DepGraph& g, SkeletonKind kind,
           const std::string& output = "") {
  for (const auto& n : g.nodes()) {
    if (n.kind != kind) continue;
    if (!output.empty() && g.OutputNameOf(n.id) != output) continue;
    return static_cast<int>(n.id);
  }
  return -1;
}

ir::Trace MakeTrace(std::vector<int> ids, std::vector<std::string> inputs,
                    std::vector<std::string> outputs) {
  ir::Trace t;
  for (int id : ids) {
    EXPECT_GE(id, 0);
    t.node_ids.push_back(static_cast<uint32_t>(id));
  }
  std::sort(t.node_ids.begin(), t.node_ids.end());
  t.inputs = std::move(inputs);
  t.outputs = std::move(outputs);
  return t;
}

/// The decline-iff-reject contract for one malformed trace: the verifier
/// must flag `rule`, and codegen must decline the same trace under the
/// same selection specialization.
void ExpectRejectedByRule(const Program& p, const ir::DepGraph& g,
                          const ir::Trace& tr, const char* rule,
                          const std::set<std::string>& sel = {},
                          bool check_codegen = true) {
  TraceContext ctx;
  ctx.sel_inputs = sel;
  const VerifyResult vr = VerifyTrace(p, g, tr, ctx);
  ASSERT_FALSE(vr.clean()) << "expected rule " << rule;
  EXPECT_NE(vr.FindRule(rule), nullptr)
      << "expected rule " << rule << ", got:\n" << vr.ToString();
  if (check_codegen) {
    jit::CodegenOptions opts;
    opts.sel_inputs = sel;
    auto gen = jit::GenerateTrace(p, g, tr, opts);
    EXPECT_FALSE(gen.ok())
        << "codegen accepted a trace the verifier rejects (" << rule << ")";
  }
}

// ===========================================================================
// Level 1: VerifyProgram
// ===========================================================================

TEST(VerifyProgramTest, Figure2ProgramIsClean) {
  Program p = MakeFigure2Program(4096);
  ASSERT_TRUE(dsl::TypeCheck(&p).ok());
  const VerifyResult vr = VerifyProgram(p);
  EXPECT_TRUE(vr.clean()) << vr.ToString();
}

TEST(VerifyProgramTest, DefBeforeUse) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Var("nosuch")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  const VerifyResult vr = VerifyProgram(p);
  const Diagnostic* d = vr.FindRule("program-def-before-use");
  ASSERT_NE(d, nullptr) << vr.ToString();
  EXPECT_NE(d->message.find("nosuch"), std::string::npos);
}

TEST(VerifyProgramTest, ImmutableReassign) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("a", Var("v")));
  body.push_back(Assign("a", Var("v")));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  EXPECT_NE(VerifyProgram(p).FindRule("program-immutable-reassign"), nullptr);
}

TEST(VerifyProgramTest, LetShadow) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("a", Var("v")));
  body.push_back(Let("a", Var("v")));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  EXPECT_NE(VerifyProgram(p).FindRule("program-let-shadow"), nullptr);
}

TEST(VerifyProgramTest, PrimNormalizeArityMismatch) {
  // Two lambda params, one value stream: ir::Normalize declines and the
  // verifier must surface it instead of letting the VM trip over it later.
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"a", "b"}, Var("a")),
                                    Var("v")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  EXPECT_NE(VerifyProgram(p).FindRule("prim-normalize"), nullptr);
}

TEST(VerifyProgramTest, PrimResultTypeDisagreement) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Var("v")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ASSERT_TRUE(dsl::TypeCheck(&p).ok());
  EXPECT_TRUE(VerifyProgram(p).clean());
  // Corrupt the annotation the way a buggy lowering pass would: the map's
  // node type no longer matches its normalized lambda result.
  p.stmts[2]->body[1]->expr->type = TypeId::kF64;
  EXPECT_NE(VerifyProgram(p).FindRule("prim-result-type"), nullptr);
}

TEST(VerifyProgramTest, BindingRoleRules) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(ReadStmt("w", "acc"));  // reads a privatized accumulator
  body.push_back(ExprStmt(Skeleton(SkeletonKind::kWrite,
                                   {Var("src"), Var("i"), Var("v")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false},
                           {"acc", TypeId::kI64, true}},
                          std::move(body));
  std::vector<BindingInfo> binds;
  binds.push_back({"src", BindingRole::kInput, 1});
  binds.push_back({"acc", BindingRole::kAccumulator, 1});
  binds.push_back({"ghost", BindingRole::kShared, 1});
  const VerifyResult vr = VerifyProgram(p, binds);
  EXPECT_NE(vr.FindRule("bind-write-to-readonly"), nullptr) << vr.ToString();
  EXPECT_NE(vr.FindRule("bind-accumulator-read"), nullptr) << vr.ToString();
  EXPECT_NE(vr.FindRule("bind-unknown-name"), nullptr) << vr.ToString();
}

TEST(VerifyProgramTest, FanoutRowScale) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(ExprStmt(Skeleton(SkeletonKind::kWrite,
                                   {Var("o1"), Var("i"), Var("v")})));
  body.push_back(ExprStmt(Skeleton(SkeletonKind::kWrite,
                                   {Var("o2"), Var("i"), Var("v")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false},
                           {"o1", TypeId::kI64, true},
                           {"o2", TypeId::kI64, true}},
                          std::move(body));
  ASSERT_TRUE(dsl::TypeCheck(&p).ok());

  // Output windows scale by 2 but nothing in the program fans rows out.
  {
    std::vector<BindingInfo> binds;
    binds.push_back({"src", BindingRole::kInput, 1});
    binds.push_back({"o1", BindingRole::kPartialOutput, 2});
    binds.push_back({"o2", BindingRole::kPartialOutput, 2});
    EXPECT_NE(VerifyProgram(p, binds).FindRule("fanout-row-scale"), nullptr);
  }
  // Sibling outputs of one result set disagree on the fan-out factor.
  {
    std::vector<BindingInfo> binds;
    binds.push_back({"o1", BindingRole::kPartialOutput, 1});
    binds.push_back({"o2", BindingRole::kPartialOutput, 3});
    EXPECT_NE(VerifyProgram(p, binds).FindRule("fanout-row-scale"), nullptr);
  }
  // Zero is never a valid window scale.
  {
    std::vector<BindingInfo> binds;
    binds.push_back({"o1", BindingRole::kPartialOutput, 0});
    EXPECT_NE(VerifyProgram(p, binds).FindRule("fanout-row-scale"), nullptr);
  }
  // The consistent scale-1 case stays clean.
  {
    std::vector<BindingInfo> binds;
    binds.push_back({"src", BindingRole::kInput, 1});
    binds.push_back({"o1", BindingRole::kPartialOutput, 1});
    binds.push_back({"o2", BindingRole::kPartialOutput, 1});
    EXPECT_TRUE(VerifyProgram(p, binds).clean());
  }
}

TEST(VerifyProgramTest, DomainMix) {
  // e1 lives in the pair domain minted by expand(cnt); mixing it
  // positionally with the pre-expand row-domain value v reads unrelated
  // rows against each other — the discipline the hash-join probe honors by
  // rebasing every still-needed value through the same expand counts.
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(ReadStmt("cnt", "cnts"));
  body.push_back(Let("e1", Skeleton(SkeletonKind::kExpand,
                                    {Var("cnt"), Var("v")})));
  body.push_back(Let("m", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"a", "b"}, Var("a") + Var("b")),
                                    Var("e1"), Var("v")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false},
                           {"cnts", TypeId::kI64, false}},
                          std::move(body));
  const VerifyResult vr = VerifyProgram(p);
  EXPECT_NE(vr.FindRule("domain-mix"), nullptr) << vr.ToString();

  // The rebased variant — both map operands behind the SAME expand counts
  // — is exactly the join lowering's shape and must stay clean.
  std::vector<StmtPtr> ok_body;
  ok_body.push_back(ReadStmt("v", "src"));
  ok_body.push_back(ReadStmt("cnt", "cnts"));
  ok_body.push_back(Let("e1", Skeleton(SkeletonKind::kExpand,
                                       {Var("cnt"), Var("v")})));
  ok_body.push_back(Let("e2", Skeleton(SkeletonKind::kExpand,
                                       {Var("cnt"), Var("v")})));
  ok_body.push_back(Let("m", Skeleton(SkeletonKind::kMap,
                                      {Lambda({"a", "b"},
                                              Var("a") + Var("b")),
                                       Var("e1"), Var("e2")})));
  Program ok = LoopProgram({{"src", TypeId::kI64, false},
                            {"cnts", TypeId::kI64, false}},
                           std::move(ok_body));
  EXPECT_EQ(VerifyProgram(ok).FindRule("domain-mix"), nullptr);
}

// ===========================================================================
// Level 2: VerifyTrace — one malformed trace per rule id.
// ===========================================================================

TEST(VerifyTraceTest, TraceEmpty) {
  Program p = MakeFigure2Program(4096);
  ir::DepGraph g = BuildGraph(&p);
  ir::Trace t;  // covers nothing
  TraceContext ctx;
  const VerifyResult vr = VerifyTrace(p, g, t, ctx);
  EXPECT_NE(vr.FindRule("trace-empty"), nullptr) << vr.ToString();
}

TEST(VerifyTraceTest, StmtAlignmentAndNestedSkeleton) {
  // One statement, two skeleton nodes (a map nested as the outer map's
  // value argument); covering only the outer node splits the statement.
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let(
      "y", Skeleton(SkeletonKind::kMap,
                    {Lambda({"x"}, Var("x") * ConstI(2)),
                     Skeleton(SkeletonKind::kMap,
                              {Lambda({"x"}, Var("x") + ConstI(1)),
                               Var("v")})})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p);
  int outer = -1;
  for (const auto& n : g.nodes()) {
    if (n.kind == SkeletonKind::kMap && g.OutputNameOf(n.id) == "y") {
      outer = static_cast<int>(n.id);
    }
  }
  ir::Trace t = MakeTrace({outer}, {}, {"y"});
  ExpectRejectedByRule(p, g, t, "trace-stmt-alignment");
  ExpectRejectedByRule(p, g, t, "nested-skeleton-outside");
}

TEST(VerifyTraceTest, CaptureStaleReassigned) {
  // `s` is reassigned by the statement BETWEEN the trace's read and the
  // map that captures it: the harness resolves captures before the call,
  // so the compiled map would see the previous iteration's cursor.
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Assign("s", Var("s") + ConstI(1)));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") + Var("s")),
                                    Var("v")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  p.stmts.insert(p.stmts.begin(), Assign("s", ConstI(0)));
  p.stmts.insert(p.stmts.begin(), MutDef("s"));
  p.AssignIds();
  ir::DepGraph g = BuildGraph(&p);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kRead),
                           NodeOf(g, SkeletonKind::kMap)},
                          {}, {"y"});
  ExpectRejectedByRule(p, g, t, "capture-stale-reassigned");
}

TEST(VerifyTraceTest, GatherBaseNotData) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("t", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Var("v")})));
  body.push_back(Let("idx", Skeleton(SkeletonKind::kMap,
                                     {Lambda({"x"},
                                             Call(ScalarOp::kMod,
                                                  {Call(ScalarOp::kAbs,
                                                        {Var("x")}),
                                                   ConstI(8)})),
                                      Var("v")})));
  body.push_back(Let("gv", Skeleton(SkeletonKind::kGather,
                                    {Var("t"), Var("idx")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p, /*typecheck=*/false);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kGather)},
                          {"t", "idx"}, {"gv"});
  ExpectRejectedByRule(p, g, t, "gather-base-not-data");
}

TEST(VerifyTraceTest, ScatterDestNotData) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("t", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Var("v")})));
  body.push_back(ExprStmt(Skeleton(
      SkeletonKind::kScatter,
      {Var("t"), Var("v"), Var("v"),
       Lambda({"o", "n"}, Var("o") + Var("n"))})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p, /*typecheck=*/false);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kScatter)},
                          {"t", "v"}, {});
  ExpectRejectedByRule(p, g, t, "scatter-dest-not-data");
}

TEST(VerifyTraceTest, ScatterConflictFnUnsupported) {
  // Multiplication is not one of the reorderable conflict functions
  // (add/min/max) the compiled scatter loop supports.
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("idx", Skeleton(SkeletonKind::kMap,
                                     {Lambda({"x"},
                                             Call(ScalarOp::kMod,
                                                  {Call(ScalarOp::kAbs,
                                                        {Var("x")}),
                                                   ConstI(8)})),
                                      Var("v")})));
  body.push_back(ExprStmt(Skeleton(
      SkeletonKind::kScatter,
      {Var("X"), Var("idx"), Var("v"),
       Lambda({"o", "n"}, Var("o") * Var("n"))})));
  Program p = LoopProgram({{"src", TypeId::kI64, false},
                           {"X", TypeId::kI64, true}},
                          std::move(body));
  ir::DepGraph g = BuildGraph(&p);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kScatter)},
                          {"idx", "v"}, {"X"});
  ExpectRejectedByRule(p, g, t, "scatter-conflict-fn");
}

TEST(VerifyTraceTest, FilterSelEscape) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("t", GtZeroFilter("v")));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Var("t")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p);
  // The filter alone: its consumer (the map) stays outside the trace, so
  // the selection vector would have to cross the compiled-code boundary.
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kFilter)}, {"v"}, {"t"});
  ExpectRejectedByRule(p, g, t, "filter-sel-escape");
}

TEST(VerifyTraceTest, FilterPositionalInSelTrace) {
  // u carries the incoming selection; the trace's own filter consumes the
  // POSITIONAL v instead, so compiled code would mint a selection
  // unrelated to the one interpretation composes with.
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("u", GtZeroFilter("v")));
  body.push_back(Let("t", Skeleton(SkeletonKind::kFilter,
                                   {Lambda({"x"}, Call(ScalarOp::kLt,
                                                       {Var("x"),
                                                        ConstI(100)})),
                                    Var("v")})));
  body.push_back(Let("m", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"a", "b"}, Var("a") + Var("b")),
                                    Var("t"), Var("u")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kFilter, "t"),
                           NodeOf(g, SkeletonKind::kMap, "m")},
                          {"v", "u"}, {"m"});
  ExpectRejectedByRule(p, g, t, "filter-positional-in-sel-trace", {"u"});
}

TEST(VerifyTraceTest, FilterMultiple) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("t1", GtZeroFilter("v")));
  body.push_back(Let("t2", Skeleton(SkeletonKind::kFilter,
                                    {Lambda({"x"}, Call(ScalarOp::kLt,
                                                        {Var("x"),
                                                         ConstI(100)})),
                                     Var("t1")})));
  body.push_back(Let("c", Skeleton(SkeletonKind::kCondense, {Var("t2")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kFilter, "t1"),
                           NodeOf(g, SkeletonKind::kFilter, "t2"),
                           NodeOf(g, SkeletonKind::kCondense)},
                          {"v"}, {"c"});
  ExpectRejectedByRule(p, g, t, "filter-multiple");
}

TEST(VerifyTraceTest, CondenseNoSource) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("t", GtZeroFilter("v")));
  body.push_back(Let("c", Skeleton(SkeletonKind::kCondense, {Var("t")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p);
  // Condense alone, positionally: neither its filter nor a
  // selection-carrying input is in the trace.
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kCondense)},
                          {"t"}, {"c"});
  ExpectRejectedByRule(p, g, t, "condense-no-source");
}

TEST(VerifyTraceTest, PostfilterEscapeNoCondense) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("t", GtZeroFilter("v")));
  body.push_back(Let("m", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Var("t")})));
  body.push_back(Let("c", Skeleton(SkeletonKind::kCondense, {Var("m")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p);
  // m escapes (its condense stays interpreted) carrying a filtered,
  // uncondensed value across the boundary.
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kFilter),
                           NodeOf(g, SkeletonKind::kMap)},
                          {"v"}, {"m"});
  ExpectRejectedByRule(p, g, t, "postfilter-escape-no-condense");
}

TEST(VerifyTraceTest, ExpandInTrace) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(ReadStmt("cnt", "cnts"));
  body.push_back(Let("e", Skeleton(SkeletonKind::kExpand,
                                   {Var("cnt"), Var("v")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false},
                           {"cnts", TypeId::kI64, false}},
                          std::move(body));
  ir::DepGraph g = BuildGraph(&p, /*typecheck=*/false);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kExpand)},
                          {"cnt", "v"}, {"e"});
  ExpectRejectedByRule(p, g, t, "expand-in-trace");
}

TEST(VerifyTraceTest, SkeletonUnsupported) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(ReadStmt("w", "other"));
  body.push_back(Let("m", Merge(MergeKind::kJoin, {Var("v"), Var("w")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false},
                           {"other", TypeId::kI64, false}},
                          std::move(body));
  ir::DepGraph g = BuildGraph(&p, /*typecheck=*/false);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kMerge)},
                          {"v", "w"}, {"m"});
  ExpectRejectedByRule(p, g, t, "skeleton-unsupported");
}

TEST(VerifyTraceTest, InputUnknown) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Var("v")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kMap)},
                          {"v", "ghost"}, {"y"});
  ExpectRejectedByRule(p, g, t, "input-unknown",
                       /*sel=*/{}, /*check_codegen=*/false);
}

TEST(VerifyTraceTest, PosNotAffine) {
  std::vector<StmtPtr> body;
  body.push_back(Let("v", Skeleton(SkeletonKind::kRead,
                                   {Var("i") + ConstI(1), Var("src")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p, /*typecheck=*/false);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kRead)}, {}, {"v"});
  ExpectRejectedByRule(p, g, t, "pos-not-affine");
}

TEST(VerifyTraceTest, ValueUnresolved) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("t", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") + ConstI(1)),
                                    Var("v")})));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Var("t")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p);
  // t is produced outside the trace but NOT listed as a boundary input —
  // the partitioner contract the compiled harness depends on.
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kMap, "y")}, {}, {"y"});
  ExpectRejectedByRule(p, g, t, "value-unresolved");
}

TEST(VerifyTraceTest, ArgUnsupported) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Lambda({"z"}, ConstI(1))})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body),
                          /*len_of=*/"v");
  ir::DepGraph g = BuildGraph(&p, /*typecheck=*/false);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kMap)}, {}, {"y"});
  ExpectRejectedByRule(p, g, t, "arg-unsupported",
                       /*sel=*/{}, /*check_codegen=*/false);
}

TEST(VerifyTraceTest, FoldInitShape) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let(
      "s", Skeleton(SkeletonKind::kFold,
                    {Lambda({"acc", "x"}, Var("acc") + Var("x")),
                     Call(ScalarOp::kAdd, {ConstI(1), ConstI(2)}),
                     Var("v")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p, /*typecheck=*/false);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kFold)}, {"v"}, {"s"});
  ExpectRejectedByRule(p, g, t, "fold-init-shape");
}

TEST(VerifyTraceTest, PrimNormalizeInTrace) {
  std::vector<StmtPtr> body;
  body.push_back(ReadStmt("v", "src"));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"a", "b"}, Var("a")),
                                    Var("v")})));
  Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
  ir::DepGraph g = BuildGraph(&p, /*typecheck=*/false);
  ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kMap)}, {"v"}, {"y"});
  ExpectRejectedByRule(p, g, t, "prim-normalize");
}

// ===========================================================================
// The five pinned miscompile families (PR-3/PR-5 history): each family's
// minimal shape must be rejected by its named rule.
// ===========================================================================

TEST(VerifyTraceTest, PinnedMiscompileFamiliesRejected) {
  // Family 1 — stale selection / statement convexity: a trace spanning an
  // interpreted scatter into an array it gathers from.
  {
    std::vector<StmtPtr> body;
    body.push_back(ReadStmt("v", "src"));
    body.push_back(Let("idx", Skeleton(SkeletonKind::kMap,
                                       {Lambda({"x"},
                                               Call(ScalarOp::kMod,
                                                    {Call(ScalarOp::kAbs,
                                                          {Var("x")}),
                                                     ConstI(64)})),
                                        Var("v")})));
    body.push_back(ExprStmt(Skeleton(
        SkeletonKind::kScatter,
        {Var("X"), Var("idx"), Var("v"),
         Lambda({"o", "n"}, Var("o") + Var("n"))})));
    body.push_back(Let("gv", Skeleton(SkeletonKind::kGather,
                                      {Var("X"), Var("idx")})));
    Program p = LoopProgram({{"src", TypeId::kI64, false},
                             {"X", TypeId::kI64, true}},
                            std::move(body));
    ir::DepGraph g = BuildGraph(&p);
    ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kMap),
                             NodeOf(g, SkeletonKind::kGather)},
                            {"v"}, {"gv"});
    ExpectRejectedByRule(p, g, t, "trace-not-convex");
  }

  // Family 2 — stale capture cursor: a map capturing the let-bound count
  // of a write in the same trace (resolved pre-call, one iteration old).
  {
    std::vector<StmtPtr> body;
    body.push_back(ReadStmt("v", "src"));
    body.push_back(Let("w", Skeleton(SkeletonKind::kWrite,
                                     {Var("out"), Var("i"), Var("v")})));
    body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                     {Lambda({"x"}, Var("x") * Var("w")),
                                      Var("v")})));
    Program p = LoopProgram({{"src", TypeId::kI64, false},
                             {"out", TypeId::kI64, true}},
                            std::move(body));
    ir::DepGraph g = BuildGraph(&p);
    ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kWrite),
                             NodeOf(g, SkeletonKind::kMap)},
                            {"v"}, {"y"});
    ExpectRejectedByRule(p, g, t, "capture-stale-produced");
  }

  // Family 3 — selection-republish bypass: a condense of the incoming
  // selection that routes around the trace's own filter, storing guard
  // survivors where interpretation stores every selected row.
  {
    std::vector<StmtPtr> body;
    body.push_back(ReadStmt("v", "src"));
    body.push_back(Let("u", GtZeroFilter("v")));
    body.push_back(Let("t", Skeleton(SkeletonKind::kFilter,
                                     {Lambda({"x"},
                                             Call(ScalarOp::kLt,
                                                  {Var("x"), ConstI(100)})),
                                      Var("u")})));
    body.push_back(Let("c", Skeleton(SkeletonKind::kCondense, {Var("u")})));
    Program p = LoopProgram({{"src", TypeId::kI64, false}}, std::move(body));
    ir::DepGraph g = BuildGraph(&p);
    ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kFilter, "t"),
                             NodeOf(g, SkeletonKind::kCondense)},
                            {"u"}, {"c", "t"});
    ExpectRejectedByRule(p, g, t, "condense-bypass", {"u"});
  }

  // Family 4 — scatter index domain: the scatter's value is filtered but
  // its index is positional; the interpreter iterates the index's
  // selection, the compiled loop the value's guard — different domains.
  {
    std::vector<StmtPtr> body;
    body.push_back(ReadStmt("v", "src"));
    body.push_back(Let("idx", Skeleton(SkeletonKind::kMap,
                                       {Lambda({"x"},
                                               Call(ScalarOp::kMod,
                                                    {Call(ScalarOp::kAbs,
                                                          {Var("x")}),
                                                     ConstI(64)})),
                                        Var("v")})));
    body.push_back(Let("t", GtZeroFilter("v")));
    body.push_back(Let("m", Skeleton(SkeletonKind::kMap,
                                     {Lambda({"x"}, Var("x") * ConstI(2)),
                                      Var("t")})));
    body.push_back(ExprStmt(Skeleton(
        SkeletonKind::kScatter,
        {Var("X"), Var("idx"), Var("m"),
         Lambda({"o", "n"}, Var("o") + Var("n"))})));
    Program p = LoopProgram({{"src", TypeId::kI64, false},
                             {"X", TypeId::kI64, true}},
                            std::move(body));
    ir::DepGraph g = BuildGraph(&p);
    ir::Trace t = MakeTrace({NodeOf(g, SkeletonKind::kMap, "idx"),
                             NodeOf(g, SkeletonKind::kFilter),
                             NodeOf(g, SkeletonKind::kMap, "m"),
                             NodeOf(g, SkeletonKind::kScatter)},
                            {"v"}, {"X"});
    ExpectRejectedByRule(p, g, t, "scatter-index-domain");
  }

  // Family 5 — join fan-out row window: output windows scaled past the
  // program's actual fan-out (program-level rule; the row-window family).
  {
    std::vector<StmtPtr> body;
    body.push_back(ReadStmt("v", "src"));
    body.push_back(ExprStmt(Skeleton(SkeletonKind::kWrite,
                                     {Var("o1"), Var("i"), Var("v")})));
    Program p = LoopProgram({{"src", TypeId::kI64, false},
                             {"o1", TypeId::kI64, true}},
                            std::move(body));
    ASSERT_TRUE(dsl::TypeCheck(&p).ok());
    std::vector<BindingInfo> binds;
    binds.push_back({"src", BindingRole::kInput, 1});
    binds.push_back({"o1", BindingRole::kPartialOutput, 2});
    const VerifyResult vr = VerifyProgram(p, binds);
    EXPECT_NE(vr.FindRule("fanout-row-scale"), nullptr) << vr.ToString();
  }
}

// ===========================================================================
// Agreement contract on the partitioner's own traces: GreedyPartition +
// GenerateTrace accept iff the verifier is clean.
// ===========================================================================

TEST(VerifyTraceTest, PartitionedTracesAgreeWithCodegen) {
  for (bool allow_filter : {false, true}) {
    Program p = MakeFigure2Program(4096);
    ir::DepGraph g = BuildGraph(&p);
    ir::PartitionConstraints c;
    c.allow_filter = allow_filter;
    const std::vector<ir::Trace> traces = ir::GreedyPartition(g, c);
    ASSERT_FALSE(traces.empty());
    for (const ir::Trace& tr : traces) {
      TraceContext ctx;
      const VerifyResult vr = VerifyTrace(p, g, tr, ctx);
      auto gen = jit::GenerateTrace(p, g, tr);
      EXPECT_EQ(gen.ok(), vr.clean())
          << "verifier/codegen disagreement (allow_filter="
          << allow_filter << "): "
          << (gen.ok() ? std::string("codegen accepted, verifier said:\n") +
                             vr.ToString()
                       : std::string("codegen declined: ") +
                             gen.status().ToString());
    }
  }
}

TEST(DiagnosticTest, ToStringCarriesRuleAndHint) {
  Diagnostic d;
  d.rule_id = "trace-not-convex";
  d.message = "conflict";
  d.fix_hint = "split the trace";
  d.stmt_index = 3;
  d.node_id = 7;
  const std::string s = d.ToString();
  EXPECT_NE(s.find("trace-not-convex"), std::string::npos);
  EXPECT_NE(s.find("split the trace"), std::string::npos);
  VerifyResult vr;
  vr.diagnostics.push_back(d);
  EXPECT_FALSE(vr.clean());
  EXPECT_NE(vr.FindRule("trace-not-convex"), nullptr);
  EXPECT_EQ(vr.FindRule("no-such-rule"), nullptr);
}

}  // namespace
}  // namespace avm::analysis
