#include "relational/join.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace avm::relational {
namespace {

TEST(HashSetTest, InsertContains) {
  HashSetI64 set;
  for (int64_t k : {5, -7, 0, 123456789}) set.Insert(k);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.Contains(5));
  EXPECT_TRUE(set.Contains(-7));
  EXPECT_FALSE(set.Contains(6));
  set.Insert(5);  // duplicate
  EXPECT_EQ(set.size(), 4u);
}

TEST(HashSetTest, GrowsUnderLoad) {
  HashSetI64 set(4);
  Rng rng(1);
  std::set<int64_t> oracle;
  for (int i = 0; i < 10000; ++i) {
    int64_t k = rng.NextInRange(-100000, 100000);
    set.Insert(k);
    oracle.insert(k);
  }
  EXPECT_EQ(set.size(), oracle.size());
  for (int64_t k : oracle) ASSERT_TRUE(set.Contains(k));
  EXPECT_FALSE(set.Contains(999999));
}

TEST(HashSetTest, ProbeSelProducesSelectionVector) {
  HashSetI64 set;
  set.Insert(10);
  set.Insert(30);
  int64_t keys[5] = {10, 20, 30, 40, 10};
  sel_t out[5];
  uint32_t n = set.ProbeSel(keys, nullptr, 5, out);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 2u);
  EXPECT_EQ(out[2], 4u);
  // Composed with an input selection.
  sel_t in_sel[3] = {1, 2, 3};
  n = set.ProbeSel(keys, in_sel, 3, out);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0], 2u);
}

TEST(HashJoinTest, ProbeReturnsPayloadRows) {
  HashJoinI64 join;
  join.Insert(100, 7);
  join.Insert(200, 8);
  int64_t keys[4] = {200, 300, 100, 100};
  sel_t pos[4];
  uint32_t rows[4];
  uint32_t n = join.Probe(keys, nullptr, 4, pos, rows);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(pos[0], 0u);
  EXPECT_EQ(rows[0], 8u);
  EXPECT_EQ(pos[1], 2u);
  EXPECT_EQ(rows[1], 7u);
}

TEST(HashJoinTest, DuplicateKeysFanOutInInsertionOrder) {
  HashJoinI64 join;
  join.Insert(100, 1);
  join.Insert(200, 2);
  join.Insert(100, 3);
  join.Insert(100, 5);
  EXPECT_EQ(join.size(), 4u);  // build rows, not distinct keys
  int64_t keys[3] = {100, 300, 100};
  sel_t pos[8];
  uint32_t rows[8];
  uint32_t n = join.Probe(keys, nullptr, 3, pos, rows);
  ASSERT_EQ(n, 6u);  // 3 build rows per matching probe position
  const sel_t want_pos[6] = {0, 0, 0, 2, 2, 2};
  const uint32_t want_rows[6] = {1, 3, 5, 1, 3, 5};
  for (uint32_t j = 0; j < n; ++j) {
    EXPECT_EQ(pos[j], want_pos[j]) << j;
    EXPECT_EQ(rows[j], want_rows[j]) << j;
  }
}

TEST(HashJoinTest, GrowKeepsEntries) {
  HashJoinI64 join(2);
  for (uint32_t i = 0; i < 5000; ++i) {
    join.Insert(static_cast<int64_t>(i) * 3, i);
  }
  EXPECT_EQ(join.size(), 5000u);
  int64_t key = 4500 * 3;
  sel_t pos[1];
  uint32_t row[1];
  ASSERT_EQ(join.Probe(&key, nullptr, 1, pos, row), 1u);
  EXPECT_EQ(row[0], 4500u);
}

TEST(SemijoinChainTest, FixedOrderCorrectness) {
  HashSetI64 f0, f1;
  for (int64_t k = 0; k < 100; k += 2) f0.Insert(k);  // evens
  for (int64_t k = 0; k < 100; k += 3) f1.Insert(k);  // multiples of 3
  AdaptiveSemijoinChain chain({&f0, &f1},
                              AdaptiveSemijoinChain::OrderPolicy::kFixed);
  std::vector<int64_t> keys(100);
  for (int i = 0; i < 100; ++i) keys[i] = i;
  std::vector<sel_t> out(100), scratch(100);
  // Both filters probe the same column here.
  uint32_t n = chain.FilterChunk({keys.data(), keys.data()}, 100, out.data(),
                                 scratch.data());
  // Survivors: multiples of 6.
  ASSERT_EQ(n, 17u);
  for (uint32_t j = 0; j < n; ++j) EXPECT_EQ(out[j] % 6, 0u);
}

TEST(SemijoinChainTest, AdaptiveReordersBySelectivity) {
  // Filter 0 keeps nearly everything; filter 1 keeps almost nothing.
  HashSetI64 keep_most, keep_few;
  for (int64_t k = 0; k < 1000; ++k) {
    if (k % 100 != 0) keep_most.Insert(k);  // 99%
    if (k < 10) keep_few.Insert(k);         // 1%
  }
  AdaptiveSemijoinChain chain({&keep_most, &keep_few},
                              AdaptiveSemijoinChain::OrderPolicy::kAdaptive);
  Rng rng(3);
  std::vector<int64_t> keys(1024);
  std::vector<sel_t> out(1024), scratch(1024);
  for (int chunk = 0; chunk < 64; ++chunk) {
    for (auto& k : keys) k = rng.NextInRange(0, 999);
    chain.FilterChunk({keys.data(), keys.data()}, 1024, out.data(),
                      scratch.data());
  }
  // The selective filter must have moved first.
  EXPECT_EQ(chain.CurrentOrder()[0], 1u);
  EXPECT_GT(chain.resorts(), 0u);
}

TEST(SemijoinChainTest, AdaptiveMatchesFixedResults) {
  HashSetI64 f0, f1;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) f0.Insert(rng.NextInRange(0, 2000));
  for (int i = 0; i < 100; ++i) f1.Insert(rng.NextInRange(0, 2000));
  std::vector<int64_t> keys(4096);
  for (auto& k : keys) k = rng.NextInRange(0, 2000);

  AdaptiveSemijoinChain fixed({&f0, &f1},
                              AdaptiveSemijoinChain::OrderPolicy::kFixed);
  AdaptiveSemijoinChain adaptive(
      {&f0, &f1}, AdaptiveSemijoinChain::OrderPolicy::kAdaptive);
  std::vector<sel_t> out1(4096), out2(4096), scratch(4096);
  for (int rep = 0; rep < 20; ++rep) {
    uint32_t n1 = fixed.FilterChunk({keys.data(), keys.data()}, 4096,
                                    out1.data(), scratch.data());
    uint32_t n2 = adaptive.FilterChunk({keys.data(), keys.data()}, 4096,
                                       out2.data(), scratch.data());
    ASSERT_EQ(n1, n2);
    std::set<sel_t> s1(out1.begin(), out1.begin() + n1);
    std::set<sel_t> s2(out2.begin(), out2.begin() + n2);
    ASSERT_EQ(s1, s2);
  }
}

TEST(SemijoinScanTest, ParallelScanMatchesSerial) {
  // Probe table with two i64 key columns; survivors of the chain must be
  // identical no matter how many workers scan it.
  const uint64_t n = 200'000;
  Schema schema({{"k0", TypeId::kI64}, {"k1", TypeId::kI64}});
  Table probe(schema);
  Rng rng(9);
  std::vector<int64_t> k0(n), k1(n);
  for (uint64_t i = 0; i < n; ++i) {
    k0[i] = rng.NextInRange(0, 5000);
    k1[i] = rng.NextInRange(0, 5000);
  }
  ASSERT_TRUE(
      probe.column(0).AppendValues(k0.data(), static_cast<uint32_t>(n)).ok());
  ASSERT_TRUE(
      probe.column(1).AppendValues(k1.data(), static_cast<uint32_t>(n)).ok());

  HashSetI64 f0, f1;
  for (int i = 0; i < 2500; ++i) f0.Insert(rng.NextInRange(0, 5000));
  for (int i = 0; i < 400; ++i) f1.Insert(rng.NextInRange(0, 5000));

  auto serial = RunSemijoinScan(probe, {"k0", "k1"}, {&f0, &f1},
                                AdaptiveSemijoinChain::OrderPolicy::kAdaptive,
                                /*num_workers=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = RunSemijoinScan(
      probe, {"k0", "k1"}, {&f0, &f1},
      AdaptiveSemijoinChain::OrderPolicy::kAdaptive, /*num_workers=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel.value().survivors, serial.value().survivors);
  EXPECT_GT(parallel.value().morsels, 1u);

  // Cross-check against a scalar count.
  uint64_t expect = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (f0.Contains(k0[i]) && f1.Contains(k1[i])) ++expect;
  }
  EXPECT_EQ(serial.value().survivors, expect);
}

TEST(JoinQueryTest, MakeJoinQueryMatchesHashJoinOracle) {
  // The engine-side join must agree with the chained HashJoinI64 probe:
  // one pair per (probe row, matching build row), duplicates fan out.
  const uint64_t n = 80'000;
  Schema ps({{"f_key", TypeId::kI64}, {"f_val", TypeId::kI64}});
  Table probe(ps);
  Rng rng(31);
  std::vector<int64_t> fk(n), fv(n);
  for (uint64_t i = 0; i < n; ++i) {
    fk[i] = rng.NextInRange(0, 2'000);
    fv[i] = rng.NextInRange(1, 99);
  }
  ASSERT_TRUE(
      probe.column(0).AppendValues(fk.data(), static_cast<uint32_t>(n)).ok());
  ASSERT_TRUE(
      probe.column(1).AppendValues(fv.data(), static_cast<uint32_t>(n)).ok());

  Schema ds({{"d_key", TypeId::kI64}, {"d_w", TypeId::kI64}});
  Table dim(ds);
  const uint32_t dn = 1'500;  // sparse coverage + duplicate tail
  std::vector<int64_t> dk(dn), dw(dn);
  for (uint32_t i = 0; i < dn; ++i) {
    dk[i] = i < 1'200 ? rng.NextInRange(0, 2'000) : dk[i - 1'200];
    dw[i] = rng.NextInRange(1, 50);
  }
  ASSERT_TRUE(dim.column(0).AppendValues(dk.data(), dn).ok());
  ASSERT_TRUE(dim.column(1).AppendValues(dw.data(), dn).ok());

  HashJoinI64 ht;
  for (uint32_t i = 0; i < dn; ++i) {
    ht.Insert(dk[i], i);  // duplicates chain — every build row matches
  }
  int64_t expect_rev = 0;
  uint64_t expect_matches = 0;
  std::vector<sel_t> pos(dn);
  std::vector<uint32_t> row(dn);
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t hits = ht.Probe(&fk[i], nullptr, 1, pos.data(), row.data());
    expect_matches += hits;
    for (uint32_t h = 0; h < hits; ++h) expect_rev += fv[i] * dw[row[h]];
  }

  for (size_t workers : {size_t{1}, size_t{4}}) {
    engine::EngineOptions eo;
    eo.strategy = engine::ExecutionStrategy::kInterpret;
    eo.num_workers = workers;
    auto run = RunJoinEngine(probe, "f_key", "f_val", dim, "d_key", "d_w", eo);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.value().matches, expect_matches) << "workers=" << workers;
    EXPECT_EQ(run.value().revenue, expect_rev) << "workers=" << workers;
    if (workers > 1) {
      EXPECT_GT(run.value().report.morsels, 1u);
      EXPECT_TRUE(run.value().report.ran_serial_reason.empty())
          << run.value().report.ran_serial_reason;
    }
  }

  // Grouped variant agrees with a scalar group-by oracle.
  engine::Query grouped =
      MakeJoinQuery(probe, "f_key", "f_val", dim, "d_key", "d_w", 4)
          .ValueOrDie();
  engine::EngineOptions eo;
  eo.strategy = engine::ExecutionStrategy::kInterpret;
  eo.num_workers = 4;
  ASSERT_TRUE(engine::ExecEngine::Execute(grouped.context(), eo).ok());
  std::vector<int64_t> expect_g(4, 0);
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t hits = ht.Probe(&fk[i], nullptr, 1, pos.data(), row.data());
    for (uint32_t h = 0; h < hits; ++h) {
      expect_g[static_cast<size_t>(fv[i] % 4)] += fv[i] * dw[row[h]];
    }
  }
  for (size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(grouped.aggregate("revenue")[g], expect_g[g]) << "group " << g;
  }
}

TEST(SemijoinChainTest, EarlyExitOnEmptySelection) {
  HashSetI64 none, all;
  for (int64_t k = 0; k < 10; ++k) all.Insert(k);
  AdaptiveSemijoinChain chain({&none, &all},
                              AdaptiveSemijoinChain::OrderPolicy::kFixed);
  std::vector<int64_t> keys{1, 2, 3};
  std::vector<sel_t> out(3), scratch(3);
  EXPECT_EQ(chain.FilterChunk({keys.data(), keys.data()}, 3, out.data(),
                              scratch.data()),
            0u);
}

}  // namespace
}  // namespace avm::relational
