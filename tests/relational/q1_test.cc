// Differential testing of the Q1 execution strategies (experiment E1's
// correctness backbone): every strategy must produce bit-identical results.
#include "relational/q1.h"

#include <gtest/gtest.h>

#include "jit/source_jit.h"

namespace avm::relational {
namespace {

class Q1Differential : public ::testing::TestWithParam<std::tuple<bool, int>> {
};

TEST_P(Q1Differential, AllStrategiesAgree) {
  auto [compress, chunk] = GetParam();
  LineitemSpec spec;
  spec.num_rows = 60'000;
  spec.compress = compress;
  auto table = MakeLineitem(spec);

  auto oracle = RunQ1Scalar(*table);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  auto vec = RunQ1Vectorized(*table, static_cast<uint32_t>(chunk));
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  EXPECT_EQ(vec.value(), oracle.value()) << "vectorized mismatch";

  auto compact = RunQ1VectorizedCompact(*table, static_cast<uint32_t>(chunk));
  ASSERT_TRUE(compact.ok()) << compact.status().ToString();
  EXPECT_EQ(compact.value(), oracle.value()) << "compact mismatch";

  if (jit::SourceJit::Available()) {
    auto compiled = RunQ1CompiledWholeQuery(*table);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_EQ(compiled.value(), oracle.value()) << "whole-query mismatch";
  }
}

INSTANTIATE_TEST_SUITE_P(
    CompressionAndChunks, Q1Differential,
    ::testing::Combine(::testing::Bool(), ::testing::Values(512, 1024, 4096)));

TEST(Q1AdaptiveVmTest, InterpretedDslMatchesOracle) {
  LineitemSpec spec;
  spec.num_rows = 30'000;
  auto table = MakeLineitem(spec);
  auto oracle = RunQ1Scalar(*table);
  ASSERT_TRUE(oracle.ok());

  vm::VmOptions opts;
  opts.enable_jit = false;
  auto run = RunQ1AdaptiveVm(*table, opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().result, oracle.value());
}

TEST(Q1AdaptiveVmTest, JitCompiledDslMatchesOracle) {
  if (!jit::SourceJit::Available()) GTEST_SKIP();
  LineitemSpec spec;
  spec.num_rows = 120'000;
  auto table = MakeLineitem(spec);
  auto oracle = RunQ1Scalar(*table);
  ASSERT_TRUE(oracle.ok());

  vm::VmOptions opts;
  opts.enable_jit = true;
  opts.optimize_after_iterations = 8;
  auto run = RunQ1AdaptiveVm(*table, opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().result, oracle.value());
  EXPECT_GT(run.value().report.traces_compiled +
                run.value().report.disk_cache_hits,
            0u);
  EXPECT_GT(run.value().report.injection_runs, 0u);
}

TEST(Q1Test, GroupStructureMatchesGenerator) {
  LineitemSpec spec;
  spec.num_rows = 50'000;
  auto table = MakeLineitem(spec);
  auto r = RunQ1Scalar(*table);
  ASSERT_TRUE(r.ok());
  // Generator produces flags {A=0, N=1, R=2} x status {O=0, F=1}, but N
  // only pairs with recent dates and F with old dates: at least 3 live
  // groups, at most 6.
  int live = 0;
  int64_t total_count = 0;
  for (const auto& g : r.value().groups) {
    if (g.count > 0) ++live;
    total_count += g.count;
  }
  EXPECT_GE(live, 3);
  EXPECT_LE(live, 6);
  // ~98% selectivity on shipdate.
  EXPECT_GT(total_count, static_cast<int64_t>(spec.num_rows * 0.95));
  EXPECT_LT(total_count, static_cast<int64_t>(spec.num_rows));
}

TEST(Q1Test, SumsAreConsistent) {
  LineitemSpec spec;
  spec.num_rows = 20'000;
  auto table = MakeLineitem(spec);
  auto r = RunQ1Scalar(*table);
  ASSERT_TRUE(r.ok());
  for (const auto& g : r.value().groups) {
    if (g.count == 0) continue;
    // disc_price = price*(100-disc), disc in [0,10] => between 90x and 100x.
    EXPECT_GE(g.sum_disc_price, g.sum_base_price * 90);
    EXPECT_LE(g.sum_disc_price, g.sum_base_price * 100);
    // charge adds tax in [0,8]%.
    EXPECT_GE(g.sum_charge, g.sum_disc_price * 100);
    EXPECT_LE(g.sum_charge, g.sum_disc_price * 108);
    // quantity in [1, 50].
    EXPECT_GE(g.sum_qty, g.count);
    EXPECT_LE(g.sum_qty, g.count * 50);
  }
}

}  // namespace
}  // namespace avm::relational
