// Full-stack integration: text program -> parse -> type check -> adaptive
// VM (interpret, profile, JIT, inject) -> results, including compressed
// storage and scheme-change fallback.
#include <gtest/gtest.h>

#include "dsl/parser.h"
#include "dsl/printer.h"
#include "dsl/typecheck.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"
#include "vm/adaptive_vm.h"

namespace avm {
namespace {

using interp::DataBinding;

constexpr const char* kPipelineSrc = R"(
data prices : i64
data taxed : i64 writable
data expensive : i64 writable
mut i
mut k
i := 0
k := 0
loop
  let p = read i prices in
  let t = map (\x -> x + x / 10) p in
  let f = filter (\x -> x > 5000) t in
  let e = condense f
  write taxed i t
  write expensive k e
  i := i + len(p)
  k := k + len(e)
  if i >= 131072 then
    break
)";

struct PipelineResult {
  std::vector<int64_t> taxed;
  std::vector<int64_t> expensive;
  int64_t expensive_count = 0;
  vm::VmReport report;
};

Result<PipelineResult> RunPipeline(const Column& prices, vm::VmOptions opts) {
  AVM_ASSIGN_OR_RETURN(dsl::Program p, dsl::ParseProgram(kPipelineSrc));
  AVM_RETURN_NOT_OK(dsl::TypeCheck(&p));
  const uint64_t n = prices.num_rows();
  PipelineResult out;
  out.taxed.assign(n, 0);
  out.expensive.assign(n, 0);
  vm::AdaptiveVm vmach(&p, opts);
  auto& in = vmach.interpreter();
  AVM_RETURN_NOT_OK(in.BindData("prices", DataBinding::FromColumn(&prices)));
  AVM_RETURN_NOT_OK(in.BindData(
      "taxed", DataBinding::Raw(TypeId::kI64, out.taxed.data(), n, true)));
  AVM_RETURN_NOT_OK(in.BindData(
      "expensive",
      DataBinding::Raw(TypeId::kI64, out.expensive.data(), n, true)));
  AVM_RETURN_NOT_OK(vmach.Run());
  AVM_ASSIGN_OR_RETURN(interp::ScalarValue k, in.GetScalar("k"));
  out.expensive_count = k.AsI64();
  out.report = vmach.Report();
  return out;
}

Column MakePriceColumn(uint64_t n, bool mixed_schemes) {
  Column col(TypeId::kI64, 8192);
  DataGen gen(42);
  if (!mixed_schemes) {
    auto v = gen.UniformI64(n, 1000, 9000);  // FOR-friendly
    col.AppendValues(v.data(), static_cast<uint32_t>(n)).Abort();
    return col;
  }
  // Alternate FOR-friendly and plain-wide blocks, forcing mid-run
  // situation changes.
  uint64_t produced = 0;
  int block = 0;
  while (produced < n) {
    uint32_t take = static_cast<uint32_t>(std::min<uint64_t>(8192,
                                                             n - produced));
    if (block % 2 == 0) {
      auto v = gen.UniformI64(take, 1000, 9000);
      col.AppendBlockWithScheme(Scheme::kFor, v.data(), take).Abort();
    } else {
      auto v = gen.UniformI64(take, 0, int64_t{1} << 45);
      col.AppendBlockWithScheme(Scheme::kPlain, v.data(), take).Abort();
    }
    produced += take;
    ++block;
  }
  return col;
}

void ExpectSameResults(const PipelineResult& a, const PipelineResult& b) {
  ASSERT_EQ(a.taxed.size(), b.taxed.size());
  EXPECT_EQ(a.taxed, b.taxed);
  ASSERT_EQ(a.expensive_count, b.expensive_count);
  for (int64_t i = 0; i < a.expensive_count; ++i) {
    ASSERT_EQ(a.expensive[i], b.expensive[i]) << i;
  }
}

TEST(EndToEndTest, InterpretedOnly) {
  Column prices = MakePriceColumn(131072, false);
  vm::VmOptions opts;
  opts.enable_jit = false;
  auto r = RunPipeline(prices, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Spot-check semantics: taxed = x + x/10 (integer division).
  std::vector<int64_t> raw(100);
  ASSERT_TRUE(prices.Read(0, 100, raw.data()).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(r.value().taxed[i], raw[i] + raw[i] / 10);
  }
}

TEST(EndToEndTest, AdaptiveJitMatchesInterpreter) {
  if (!jit::SourceJit::Available()) GTEST_SKIP();
  Column prices = MakePriceColumn(131072, false);
  vm::VmOptions interp_only;
  interp_only.enable_jit = false;
  auto a = RunPipeline(prices, interp_only);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  vm::VmOptions adaptive;
  adaptive.optimize_after_iterations = 4;
  auto b = RunPipeline(prices, adaptive);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_GT(b.value().report.traces_compiled +
                b.value().report.disk_cache_hits,
            0u);
  EXPECT_GT(b.value().report.injection_runs, 0u);
  ExpectSameResults(a.value(), b.value());
}

TEST(EndToEndTest, MixedSchemesForceFallbackAndStayCorrect) {
  if (!jit::SourceJit::Available()) GTEST_SKIP();
  Column prices = MakePriceColumn(262144, true);
  vm::VmOptions interp_only;
  interp_only.enable_jit = false;
  auto a = RunPipeline(prices, interp_only);
  ASSERT_TRUE(a.ok());

  vm::VmOptions adaptive;
  adaptive.optimize_after_iterations = 2;
  adaptive.recheck_interval = 4;
  auto b = RunPipeline(prices, adaptive);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectSameResults(a.value(), b.value());
  // Alternating schemes: the FOR-specialized variant cannot cover the plain
  // blocks, so compiled variants for both situations exist.
  EXPECT_GE(b.value().report.traces_compiled +
                b.value().report.disk_cache_hits,
            1u);
}

TEST(EndToEndTest, PrintedProgramRunsIdentically) {
  // print -> reparse -> run must be semantically identical.
  auto p1 = dsl::ParseProgram(kPipelineSrc);
  ASSERT_TRUE(p1.ok());
  std::string printed = dsl::PrintProgram(p1.value());
  auto p2 = dsl::ParseProgram(printed);
  ASSERT_TRUE(p2.ok()) << p2.status().ToString() << "\n" << printed;
  EXPECT_TRUE(dsl::ProgramEquals(p1.value(), p2.value()));
}

TEST(EndToEndTest, ProfilerIdentifiesMapAsHot) {
  Column prices = MakePriceColumn(131072, false);
  vm::VmOptions opts;
  opts.enable_jit = false;
  auto r = RunPipeline(prices, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().report.profile.empty());
  EXPECT_NE(r.value().report.profile.find("map"), std::string::npos);
  EXPECT_NE(r.value().report.profile.find("filter"), std::string::npos);
}

}  // namespace
}  // namespace avm
