#include "storage/datagen.h"

#include <gtest/gtest.h>

#include <set>

namespace avm {
namespace {

TEST(DataGenTest, Deterministic) {
  DataGen a(7), b(7);
  EXPECT_EQ(a.UniformI64(100, 0, 1000), b.UniformI64(100, 0, 1000));
}

TEST(DataGenTest, RunsHaveRequestedMeanLength) {
  DataGen gen(1);
  auto v = gen.RunsI64(100000, 50, 8.0);
  uint64_t runs = 1;
  for (size_t i = 1; i < v.size(); ++i) runs += v[i] != v[i - 1] ? 1 : 0;
  double mean = 100000.0 / runs;
  EXPECT_NEAR(mean, 8.0, 1.5);
}

TEST(DataGenTest, SortedIsSorted) {
  DataGen gen(2);
  auto v = gen.SortedI64(10000, -100, 100);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(DataGenTest, BernoulliSelectivity) {
  DataGen gen(3);
  auto v = gen.BernoulliI64(100000, 0.2);
  int64_t sum = 0;
  for (auto x : v) sum += x;
  EXPECT_NEAR(sum / 100000.0, 0.2, 0.01);
}

TEST(LineitemTest, SchemaAndDomains) {
  LineitemSpec spec;
  spec.num_rows = 20000;
  auto t = MakeLineitem(spec);
  ASSERT_EQ(t->num_rows(), 20000u);
  ASSERT_EQ(t->num_columns(), 7u);

  std::vector<int64_t> qty(20000);
  ASSERT_TRUE(t->column(0).Read(0, 20000, qty.data()).ok());
  for (auto q : qty) {
    ASSERT_GE(q, 1);
    ASSERT_LE(q, 50);
  }
  std::vector<int8_t> rf(20000);
  ASSERT_TRUE(t->column(4).Read(0, 20000, rf.data()).ok());
  std::set<int8_t> flags(rf.begin(), rf.end());
  EXPECT_LE(flags.size(), 3u);
  std::vector<int32_t> sd(20000);
  ASSERT_TRUE(t->column(6).Read(0, 20000, sd.data()).ok());
  for (auto d : sd) {
    ASSERT_GE(d, 8036);
    ASSERT_LE(d, 10561);
  }
}

TEST(LineitemTest, ReturnflagCorrelatesWithShipdate) {
  LineitemSpec spec;
  spec.num_rows = 20000;
  auto t = MakeLineitem(spec);
  std::vector<int8_t> rf(20000);
  std::vector<int32_t> sd(20000);
  ASSERT_TRUE(t->column(4).Read(0, 20000, rf.data()).ok());
  ASSERT_TRUE(t->column(6).Read(0, 20000, sd.data()).ok());
  for (int i = 0; i < 20000; ++i) {
    if (sd[i] >= 9400) EXPECT_EQ(rf[i], 1);  // 'N' only for recent dates
  }
}

TEST(LineitemTest, CompressionActuallyHappens) {
  LineitemSpec spec;
  spec.num_rows = 100000;
  spec.compress = true;
  auto compressed = MakeLineitem(spec);
  spec.compress = false;
  auto plain = MakeLineitem(spec);
  EXPECT_LT(compressed->EncodedBytes(), plain->EncodedBytes());
}

TEST(OrdersTest, DenseKeys) {
  auto t = MakeOrders(5000);
  std::vector<int64_t> keys(5000);
  ASSERT_TRUE(t->column(0).Read(0, 5000, keys.data()).ok());
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(keys[i], i);
}

TEST(PartTest, SizesInRange) {
  auto t = MakePart(3000);
  std::vector<int32_t> sizes(3000);
  ASSERT_TRUE(t->column(1).Read(0, 3000, sizes.data()).ok());
  for (auto s : sizes) {
    ASSERT_GE(s, 1);
    ASSERT_LE(s, 50);
  }
}

}  // namespace
}  // namespace avm
