// storage::SpillFile integrity tests: round-trips through seal/reopen,
// fault injection (short writes / simulated ENOSPC, corrupted and
// truncated sealed files), bounds checking, and the no-leaked-temp-files
// guarantee — every failure must surface as a clean Status, never as
// wrong rows or an orphaned file.
#include "storage/spill_file.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

namespace avm::storage {
namespace {

namespace fs = std::filesystem;

/// Fresh private spill directory per test, removed (and checked empty of
/// spill files) at teardown.
class SpillFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("avm-spill-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    SpillFile::SetWriteLimitForTesting(-1);
    fs::remove_all(dir_);
  }

  SpillFile::Options Opts() const { return {dir_.string()}; }

  size_t FilesInDir() const {
    size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir_)) {
      (void)e;
      ++n;
    }
    return n;
  }

  fs::path dir_;
};

std::vector<int64_t> Iota(uint64_t n, int64_t start) {
  std::vector<int64_t> v(n);
  for (uint64_t i = 0; i < n; ++i) v[i] = start + static_cast<int64_t>(i);
  return v;
}

TEST_F(SpillFileTest, RoundTripMultiRunMultiColumn) {
  auto created = SpillFile::Create({TypeId::kI64, TypeId::kF64}, Opts());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<SpillFile> sf = std::move(created).value();

  const uint64_t kRuns = 3, kRows = 1000;
  for (uint64_t r = 0; r < kRuns; ++r) {
    std::vector<int64_t> keys = Iota(kRows, static_cast<int64_t>(r) * 10'000);
    std::vector<double> vals(kRows);
    for (uint64_t i = 0; i < kRows; ++i) {
      vals[i] = static_cast<double>(keys[i]) / 4.0;
    }
    const std::vector<const uint8_t*> cols = {
        reinterpret_cast<const uint8_t*>(keys.data()),
        reinterpret_cast<const uint8_t*>(vals.data())};
    auto run = sf->AppendRun(/*morsel=*/r, kRows, cols);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.value(), r);
  }
  EXPECT_EQ(sf->bytes_written(), kRuns * kRows * (8 + 8));
  ASSERT_TRUE(sf->Seal().ok());
  ASSERT_TRUE(sf->ValidateChecksums().ok());

  // Reopen the sealed file and read back an unaligned chunk of each run.
  auto reopened = SpillFile::Open(sf->path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<SpillFile> rd = std::move(reopened).value();
  ASSERT_EQ(rd->num_runs(), kRuns);
  ASSERT_EQ(rd->col_types().size(), 2u);
  EXPECT_EQ(rd->col_types()[0], TypeId::kI64);
  EXPECT_EQ(rd->col_types()[1], TypeId::kF64);
  ASSERT_TRUE(rd->ValidateChecksums().ok());
  for (uint64_t r = 0; r < kRuns; ++r) {
    EXPECT_EQ(rd->run(r).morsel, r);
    EXPECT_EQ(rd->run(r).rows, kRows);
    std::vector<int64_t> keys(257);
    std::vector<double> vals(257);
    ASSERT_TRUE(rd->ReadRunChunk(r, 0, 123, 257, keys.data()).ok());
    ASSERT_TRUE(rd->ReadRunChunk(r, 1, 123, 257, vals.data()).ok());
    for (uint64_t i = 0; i < 257; ++i) {
      const int64_t want = static_cast<int64_t>(r) * 10'000 + 123 +
                           static_cast<int64_t>(i);
      EXPECT_EQ(keys[i], want);
      EXPECT_EQ(vals[i], static_cast<double>(want) / 4.0);
    }
  }

  // Close() unlinks: rd holds the sealed path, sf the (renamed-away) temp.
  rd->Close();
  sf->Close();
  EXPECT_EQ(FilesInDir(), 0u);
}

TEST_F(SpillFileTest, ReadRunChunkBoundsChecked) {
  auto created = SpillFile::Create({TypeId::kI64}, Opts());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SpillFile> sf = std::move(created).value();
  std::vector<int64_t> v = Iota(100, 0);
  const std::vector<const uint8_t*> cols = {
      reinterpret_cast<const uint8_t*>(v.data())};
  ASSERT_TRUE(sf->AppendRun(0, 100, cols).ok());
  ASSERT_TRUE(sf->Seal().ok());

  int64_t out[8];
  EXPECT_TRUE(sf->ReadRunChunk(0, 0, 96, 8, out).IsOutOfRange());
  EXPECT_TRUE(sf->ReadRunChunk(1, 0, 0, 1, out).IsOutOfRange());
  EXPECT_TRUE(sf->ReadRunChunk(0, 3, 0, 1, out).IsOutOfRange());
  EXPECT_TRUE(sf->ReadRunChunk(0, 0, 0, 8, out).ok());
}

TEST_F(SpillFileTest, SimulatedDiskFullFailsCleanlyAndLeaksNothing) {
  auto created = SpillFile::Create({TypeId::kI64}, Opts());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SpillFile> sf = std::move(created).value();

  std::vector<int64_t> v = Iota(4096, 0);
  const std::vector<const uint8_t*> cols = {
      reinterpret_cast<const uint8_t*>(v.data())};
  ASSERT_TRUE(sf->AppendRun(0, 4096, cols).ok());

  // Allow a short write partway into the next run, then nothing.
  SpillFile::SetWriteLimitForTesting(1000);
  Status st = sf->AppendRun(1, 4096, cols).status();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();

  // A poisoned writer must still tear down without leaving files behind.
  SpillFile::SetWriteLimitForTesting(-1);
  sf->Close();
  EXPECT_EQ(FilesInDir(), 0u);
}

TEST_F(SpillFileTest, SealUnderDiskFullFailsCleanly) {
  auto created = SpillFile::Create({TypeId::kI64}, Opts());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SpillFile> sf = std::move(created).value();
  std::vector<int64_t> v = Iota(512, 0);
  const std::vector<const uint8_t*> cols = {
      reinterpret_cast<const uint8_t*>(v.data())};
  ASSERT_TRUE(sf->AppendRun(0, 512, cols).ok());

  SpillFile::SetWriteLimitForTesting(0);  // directory write must fail
  Status st = sf->Seal();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  SpillFile::SetWriteLimitForTesting(-1);
  sf->Close();
  EXPECT_EQ(FilesInDir(), 0u);
}

TEST_F(SpillFileTest, CorruptHeaderRejectedAtOpen) {
  auto created = SpillFile::Create({TypeId::kI64}, Opts());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SpillFile> sf = std::move(created).value();
  std::vector<int64_t> v = Iota(256, 0);
  const std::vector<const uint8_t*> cols = {
      reinterpret_cast<const uint8_t*>(v.data())};
  ASSERT_TRUE(sf->AppendRun(0, 256, cols).ok());
  ASSERT_TRUE(sf->Seal().ok());
  const std::string path = sf->path();

  // Flip one byte inside the checksummed header region.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 12, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 12, SEEK_SET), 0);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }
  auto reopened = SpillFile::Open(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsRuntimeError())
      << reopened.status().ToString();
  sf->Close();
  EXPECT_EQ(FilesInDir(), 0u);
}

TEST_F(SpillFileTest, CorruptPayloadCaughtByValidateNeverWrongRows) {
  auto created = SpillFile::Create({TypeId::kI64}, Opts());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SpillFile> sf = std::move(created).value();
  std::vector<int64_t> v = Iota(256, 0);
  const std::vector<const uint8_t*> cols = {
      reinterpret_cast<const uint8_t*>(v.data())};
  ASSERT_TRUE(sf->AppendRun(0, 256, cols).ok());
  ASSERT_TRUE(sf->Seal().ok());
  const std::string path = sf->path();

  // Flip a payload byte (past the 56-byte header). The header and run
  // directory stay valid, so Open succeeds — but the pre-merge checksum
  // pass must refuse to serve the run.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 64, SEEK_SET), 0);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  auto reopened = SpillFile::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<SpillFile> rd = std::move(reopened).value();
  Status st = rd->ValidateChecksums();
  EXPECT_TRUE(st.IsRuntimeError()) << st.ToString();
  rd->Close();
  sf->Close();
  EXPECT_EQ(FilesInDir(), 0u);
}

TEST_F(SpillFileTest, TruncatedFileRejected) {
  auto created = SpillFile::Create({TypeId::kI64}, Opts());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SpillFile> sf = std::move(created).value();
  std::vector<int64_t> v = Iota(1024, 0);
  const std::vector<const uint8_t*> cols = {
      reinterpret_cast<const uint8_t*>(v.data())};
  ASSERT_TRUE(sf->AppendRun(0, 1024, cols).ok());
  ASSERT_TRUE(sf->Seal().ok());
  const std::string path = sf->path();

  // Cut the file mid-payload: the run directory at the tail is gone.
  fs::resize_file(path, 56 + 512);
  auto reopened = SpillFile::Open(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsRuntimeError())
      << reopened.status().ToString();
  sf->Close();
  EXPECT_EQ(FilesInDir(), 0u);
}

TEST_F(SpillFileTest, OpenMissingFileIsNotFound) {
  auto reopened = SpillFile::Open((dir_ / "nope.avmsp").string());
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsNotFound()) << reopened.status().ToString();
}

TEST_F(SpillFileTest, DestructorUnlinksUnsealedFile) {
  {
    auto created = SpillFile::Create({TypeId::kI64}, Opts());
    ASSERT_TRUE(created.ok());
    std::unique_ptr<SpillFile> sf = std::move(created).value();
    std::vector<int64_t> v = Iota(64, 0);
    const std::vector<const uint8_t*> cols = {
        reinterpret_cast<const uint8_t*>(v.data())};
    ASSERT_TRUE(sf->AppendRun(0, 64, cols).ok());
    EXPECT_EQ(FilesInDir(), 1u);
  }
  EXPECT_EQ(FilesInDir(), 0u);
}

}  // namespace
}  // namespace avm::storage
