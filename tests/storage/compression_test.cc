#include "storage/compression.h"

#include <gtest/gtest.h>

#include "storage/datagen.h"

namespace avm {
namespace {

// ---------------------------------------------------------------------------
// Round-trip property: for every applicable (scheme, distribution) pair,
// decode(encode(v)) == v, full-block and arbitrary sub-ranges.
// ---------------------------------------------------------------------------

struct SchemeCase {
  Scheme scheme;
  const char* data_kind;  // uniform | runs | sorted | narrow | fewdistinct
};

class IntSchemeRoundTrip
    : public ::testing::TestWithParam<std::tuple<Scheme, const char*>> {};

std::vector<int64_t> MakeData(const char* kind, size_t n) {
  DataGen gen(1234);
  if (std::string(kind) == "uniform") return gen.UniformI64(n, -1e9, 1e9);
  if (std::string(kind) == "runs") return gen.RunsI64(n, 50, 8.0);
  if (std::string(kind) == "sorted") return gen.SortedI64(n, 0, 1e12);
  if (std::string(kind) == "narrow") return gen.UniformI64(n, 1000, 1100);
  return gen.UniformI64(n, 0, 15);  // fewdistinct
}

TEST_P(IntSchemeRoundTrip, FullBlock) {
  auto [scheme, kind] = GetParam();
  auto values = MakeData(kind, 4096);
  auto blk = EncodeBlock(scheme, TypeId::kI64, values.data(), 4096);
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  std::vector<int64_t> out(4096);
  ASSERT_TRUE(DecodeBlock(blk.value(), out.data()).ok());
  EXPECT_EQ(values, out) << SchemeName(scheme) << " over " << kind;
}

TEST_P(IntSchemeRoundTrip, SubRanges) {
  auto [scheme, kind] = GetParam();
  auto values = MakeData(kind, 1000);
  auto blk = EncodeBlock(scheme, TypeId::kI64, values.data(), 1000);
  ASSERT_TRUE(blk.ok());
  for (auto [off, len] : std::vector<std::pair<uint32_t, uint32_t>>{
           {0, 1}, {999, 1}, {17, 100}, {500, 500}, {0, 1000}}) {
    std::vector<int64_t> out(len);
    ASSERT_TRUE(DecodeBlockRange(blk.value(), off, len, out.data()).ok());
    for (uint32_t i = 0; i < len; ++i) {
      ASSERT_EQ(out[i], values[off + i])
          << SchemeName(scheme) << " " << kind << " off=" << off << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, IntSchemeRoundTrip,
    ::testing::Combine(::testing::Values(Scheme::kPlain, Scheme::kRle,
                                         Scheme::kDict, Scheme::kFor,
                                         Scheme::kDelta),
                       ::testing::Values("uniform", "runs", "sorted", "narrow",
                                         "fewdistinct")));

// Per-type round trip through the auto-chosen scheme.
class TypedAutoRoundTrip : public ::testing::TestWithParam<TypeId> {};

TEST_P(TypedAutoRoundTrip, AutoEncodeDecodes) {
  TypeId t = GetParam();
  const uint32_t n = 2048;
  DataGen gen(99);
  auto wide = gen.UniformI64(n, -100, 100);
  std::vector<uint8_t> raw(n * TypeWidth(t));
  DispatchType(t, [&]<typename T>() {
    if constexpr (std::is_same_v<T, bool>) {
      auto* p = reinterpret_cast<int8_t*>(raw.data());
      for (uint32_t i = 0; i < n; ++i) p[i] = wide[i] > 0 ? 1 : 0;
    } else {
      auto* p = reinterpret_cast<T*>(raw.data());
      for (uint32_t i = 0; i < n; ++i) p[i] = static_cast<T>(wide[i]);
    }
  });
  auto blk = EncodeBlockAuto(t, raw.data(), n);
  ASSERT_TRUE(blk.ok()) << blk.status().ToString();
  std::vector<uint8_t> out(raw.size());
  ASSERT_TRUE(DecodeBlock(blk.value(), out.data()).ok());
  EXPECT_EQ(raw, out) << TypeName(t) << " via "
                      << SchemeName(blk.value().scheme);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, TypedAutoRoundTrip,
                         ::testing::Values(TypeId::kBool, TypeId::kI8,
                                           TypeId::kI16, TypeId::kI32,
                                           TypeId::kI64, TypeId::kF32,
                                           TypeId::kF64));

// ---------------------------------------------------------------------------
// Stats & scheme choice
// ---------------------------------------------------------------------------

TEST(StatsTest, MinMaxSortedRuns) {
  std::vector<int64_t> v{1, 1, 1, 2, 2, 3};
  BlockStats s = ComputeStats(TypeId::kI64, v.data(), 6);
  EXPECT_EQ(s.min_i, 1);
  EXPECT_EQ(s.max_i, 3);
  EXPECT_TRUE(s.sorted);
  EXPECT_EQ(s.distinct, 3u);
  EXPECT_DOUBLE_EQ(s.avg_run_len, 2.0);
}

TEST(StatsTest, UnsortedDetected) {
  std::vector<int64_t> v{3, 1, 2};
  BlockStats s = ComputeStats(TypeId::kI64, v.data(), 3);
  EXPECT_FALSE(s.sorted);
}

TEST(SchemeChoiceTest, LongRunsPickRle) {
  DataGen gen(1);
  auto v = gen.RunsI64(4096, 10, 16.0);
  BlockStats s = ComputeStats(TypeId::kI64, v.data(), 4096);
  EXPECT_EQ(ChooseScheme(TypeId::kI64, s, 4096), Scheme::kRle);
}

TEST(SchemeChoiceTest, NarrowRangePicksFor) {
  DataGen gen(2);
  auto v = gen.UniformI64(4096, 1000000, 1000250);
  BlockStats s = ComputeStats(TypeId::kI64, v.data(), 4096);
  EXPECT_EQ(ChooseScheme(TypeId::kI64, s, 4096), Scheme::kFor);
}

TEST(SchemeChoiceTest, SortedPicksDelta) {
  DataGen gen(3);
  auto v = gen.SortedI64(4096, 0, int64_t{1} << 40);
  BlockStats s = ComputeStats(TypeId::kI64, v.data(), 4096);
  EXPECT_EQ(ChooseScheme(TypeId::kI64, s, 4096), Scheme::kDelta);
}

TEST(SchemeChoiceTest, WideRandomPicksPlainOrDict) {
  DataGen gen(4);
  auto v = gen.UniformI64(4096, INT64_MIN / 2, INT64_MAX / 2);
  BlockStats s = ComputeStats(TypeId::kI64, v.data(), 4096);
  EXPECT_EQ(ChooseScheme(TypeId::kI64, s, 4096), Scheme::kPlain);
}

TEST(CompressionRatioTest, ForBeatsPlainOnNarrowData) {
  DataGen gen(5);
  auto v = gen.UniformI64(65536, 0, 255);
  auto plain = EncodeBlock(Scheme::kPlain, TypeId::kI64, v.data(), 65536);
  auto forb = EncodeBlock(Scheme::kFor, TypeId::kI64, v.data(), 65536);
  ASSERT_TRUE(plain.ok() && forb.ok());
  EXPECT_LT(forb.value().data.size(), plain.value().data.size() / 4);
}

// ---------------------------------------------------------------------------
// Compressed-execution accessors
// ---------------------------------------------------------------------------

TEST(ForAccessorTest, DeltasPlusRefReconstruct) {
  std::vector<int64_t> v{100, 105, 103, 100, 110};
  auto blk = EncodeBlock(Scheme::kFor, TypeId::kI64, v.data(), 5);
  ASSERT_TRUE(blk.ok());
  EXPECT_EQ(blk.value().for_ref, 100);
  std::vector<uint64_t> deltas(5);
  ASSERT_TRUE(DecodeForDeltas(blk.value(), deltas.data()).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(blk.value().for_ref + static_cast<int64_t>(deltas[i]), v[i]);
  }
}

TEST(ForAccessorTest, Range32) {
  DataGen gen(6);
  auto v = gen.UniformI64(1000, 5000, 9000);
  auto blk = EncodeBlock(Scheme::kFor, TypeId::kI64, v.data(), 1000);
  ASSERT_TRUE(blk.ok());
  ASSERT_LE(blk.value().bit_width, 32u);
  std::vector<uint32_t> d(100);
  ASSERT_TRUE(DecodeForDeltasRange32(blk.value(), 50, 100, d.data()).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(blk.value().for_ref + static_cast<int64_t>(d[i]), v[50 + i]);
  }
}

TEST(ForAccessorTest, RejectsWrongScheme) {
  std::vector<int64_t> v{1, 2, 3};
  auto blk = EncodeBlock(Scheme::kPlain, TypeId::kI64, v.data(), 3);
  std::vector<uint64_t> d(3);
  EXPECT_TRUE(DecodeForDeltas(blk.value(), d.data()).IsInvalidArgument());
}

TEST(RleAccessorTest, RunsMatch) {
  std::vector<int64_t> v{7, 7, 7, 2, 2, 9};
  auto blk = EncodeBlock(Scheme::kRle, TypeId::kI64, v.data(), 6);
  ASSERT_TRUE(blk.ok());
  std::vector<int64_t> values;
  std::vector<uint32_t> lengths;
  ASSERT_TRUE(DecodeRleRuns(blk.value(), &values, &lengths).ok());
  EXPECT_EQ(values, (std::vector<int64_t>{7, 2, 9}));
  EXPECT_EQ(lengths, (std::vector<uint32_t>{3, 2, 1}));
}

TEST(DictAccessorTest, DictionaryAndCodes) {
  std::vector<int64_t> v{50, 60, 50, 70, 60};
  auto blk = EncodeBlock(Scheme::kDict, TypeId::kI64, v.data(), 5);
  ASSERT_TRUE(blk.ok());
  std::vector<int64_t> dict;
  ASSERT_TRUE(DecodeDictionary(blk.value(), &dict).ok());
  EXPECT_EQ(dict, (std::vector<int64_t>{50, 60, 70}));
  std::vector<uint32_t> codes(5);
  ASSERT_TRUE(DecodeDictCodes(blk.value(), codes.data()).ok());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dict[codes[i]], v[i]);
}

TEST(DecodeRangeTest, OutOfRangeRejected) {
  std::vector<int64_t> v{1, 2, 3};
  auto blk = EncodeBlock(Scheme::kPlain, TypeId::kI64, v.data(), 3);
  int64_t out[4];
  EXPECT_TRUE(DecodeBlockRange(blk.value(), 2, 2, out).IsOutOfRange());
}

TEST(FloatTest, RleAndDictRoundTrip) {
  std::vector<double> v{1.5, 1.5, 2.5, 2.5, 2.5, 1.5};
  for (Scheme s : {Scheme::kRle, Scheme::kDict, Scheme::kPlain}) {
    auto blk = EncodeBlock(s, TypeId::kF64, v.data(), 6);
    ASSERT_TRUE(blk.ok()) << SchemeName(s);
    std::vector<double> out(6);
    ASSERT_TRUE(DecodeBlock(blk.value(), out.data()).ok());
    EXPECT_EQ(v, out) << SchemeName(s);
  }
}

TEST(FloatTest, ForRejectedForFloats) {
  std::vector<double> v{1.0, 2.0};
  EXPECT_FALSE(EncodeBlock(Scheme::kFor, TypeId::kF64, v.data(), 2).ok());
}

TEST(EdgeTest, EmptyBlock) {
  auto blk = EncodeBlock(Scheme::kPlain, TypeId::kI64, nullptr, 0);
  ASSERT_TRUE(blk.ok());
  EXPECT_EQ(blk.value().count, 0u);
}

TEST(EdgeTest, SingleValueAllSchemes) {
  int64_t v = -42;
  for (Scheme s : {Scheme::kPlain, Scheme::kRle, Scheme::kDict, Scheme::kFor,
                   Scheme::kDelta}) {
    auto blk = EncodeBlock(s, TypeId::kI64, &v, 1);
    ASSERT_TRUE(blk.ok()) << SchemeName(s);
    int64_t out = 0;
    ASSERT_TRUE(DecodeBlock(blk.value(), &out).ok());
    EXPECT_EQ(out, -42) << SchemeName(s);
  }
}

TEST(EdgeTest, ExtremeValuesFor) {
  std::vector<int64_t> v{INT64_MIN, INT64_MAX};
  auto blk = EncodeBlock(Scheme::kFor, TypeId::kI64, v.data(), 2);
  ASSERT_TRUE(blk.ok());
  std::vector<int64_t> out(2);
  ASSERT_TRUE(DecodeBlock(blk.value(), out.data()).ok());
  EXPECT_EQ(v, out);
}

}  // namespace
}  // namespace avm
