#include "storage/column.h"

#include <gtest/gtest.h>

#include "storage/datagen.h"
#include "storage/table.h"

namespace avm {
namespace {

TEST(ColumnTest, AppendSplitsIntoBlocks) {
  Column col(TypeId::kI64, /*block_size=*/1000);
  DataGen gen(1);
  auto v = gen.UniformI64(3500, 0, 100);
  ASSERT_TRUE(col.AppendValues(v.data(), 3500).ok());
  EXPECT_EQ(col.num_rows(), 3500u);
  EXPECT_EQ(col.num_blocks(), 4u);
  EXPECT_EQ(col.block(0).count, 1000u);
  EXPECT_EQ(col.block(3).count, 500u);
}

TEST(ColumnTest, ReadSpansBlocks) {
  Column col(TypeId::kI64, 100);
  std::vector<int64_t> v(1000);
  for (int i = 0; i < 1000; ++i) v[i] = i * 3;
  ASSERT_TRUE(col.AppendValues(v.data(), 1000).ok());
  std::vector<int64_t> out(250);
  ASSERT_TRUE(col.Read(75, 250, out.data()).ok());
  for (int i = 0; i < 250; ++i) EXPECT_EQ(out[i], (75 + i) * 3);
}

TEST(ColumnTest, ReadPastEndRejected) {
  Column col(TypeId::kI32, 10);
  std::vector<int32_t> v(10, 1);
  ASSERT_TRUE(col.AppendValues(v.data(), 10).ok());
  int32_t out[5];
  EXPECT_TRUE(col.Read(8, 5, out).IsOutOfRange());
}

TEST(ColumnTest, PerBlockSchemesCanDiffer) {
  Column col(TypeId::kI64, 1000);
  DataGen gen(2);
  auto narrow = gen.UniformI64(1000, 0, 50);          // FOR
  auto runs = gen.RunsI64(1000, 5, 20.0);             // RLE
  auto wide = gen.UniformI64(1000, INT64_MIN / 2, INT64_MAX / 2);  // Plain
  ASSERT_TRUE(col.AppendValues(narrow.data(), 1000).ok());
  ASSERT_TRUE(col.AppendValues(runs.data(), 1000).ok());
  ASSERT_TRUE(col.AppendValues(wide.data(), 1000).ok());
  ASSERT_EQ(col.num_blocks(), 3u);
  EXPECT_NE(col.block(0).scheme, col.block(2).scheme);
  auto s0 = col.SchemeAt(500);
  auto s2 = col.SchemeAt(2500);
  ASSERT_TRUE(s0.ok() && s2.ok());
  EXPECT_EQ(s0.value(), col.block(0).scheme);
  EXPECT_EQ(s2.value(), col.block(2).scheme);
}

TEST(ColumnTest, ForcedSchemePerBlock) {
  Column col(TypeId::kI64, 100);
  std::vector<int64_t> v(100, 7);
  ASSERT_TRUE(col.AppendBlockWithScheme(Scheme::kPlain, v.data(), 100).ok());
  ASSERT_TRUE(col.AppendBlockWithScheme(Scheme::kRle, v.data(), 100).ok());
  EXPECT_EQ(col.block(0).scheme, Scheme::kPlain);
  EXPECT_EQ(col.block(1).scheme, Scheme::kRle);
}

TEST(ColumnTest, BlockAtFindsOffsets) {
  Column col(TypeId::kI64, 100);
  std::vector<int64_t> v(250, 1);
  ASSERT_TRUE(col.AppendValues(v.data(), 250).ok());
  auto b = col.BlockAt(150);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().first, &col.block(1));
  EXPECT_EQ(b.value().second, 50u);
  EXPECT_TRUE(col.BlockAt(250).status().IsOutOfRange());
}

TEST(ColumnTest, CompressionRatioReported) {
  Column col(TypeId::kI64, 4096);
  DataGen gen(3);
  auto v = gen.UniformI64(65536, 0, 100);
  ASSERT_TRUE(col.AppendValues(v.data(), 65536).ok());
  EXPECT_GT(col.CompressionRatio(), 4.0);
}

TEST(ScannerTest, SequentialChunksMatchColumn) {
  Column col(TypeId::kI64, 777);  // deliberately unaligned block size
  std::vector<int64_t> v(5000);
  for (int i = 0; i < 5000; ++i) v[i] = i;
  ASSERT_TRUE(col.AppendValues(v.data(), 5000).ok());

  ColumnScanner scan(&col);
  std::vector<int64_t> got;
  std::vector<int64_t> buf(1024);
  while (!scan.AtEnd()) {
    Scheme s;
    auto n = scan.Next(1024, buf.data(), &s);
    ASSERT_TRUE(n.ok());
    got.insert(got.end(), buf.begin(), buf.begin() + n.value());
  }
  EXPECT_EQ(got, v);
}

TEST(ScannerTest, SeekRestarts) {
  Column col(TypeId::kI64, 100);
  std::vector<int64_t> v(300);
  for (int i = 0; i < 300; ++i) v[i] = i;
  ASSERT_TRUE(col.AppendValues(v.data(), 300).ok());
  ColumnScanner scan(&col);
  std::vector<int64_t> buf(300);
  ASSERT_TRUE(scan.Next(300, buf.data()).ok());
  scan.SeekToStart();
  EXPECT_EQ(scan.position(), 0u);
  auto n = scan.Next(10, buf.data());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 10u);
  EXPECT_EQ(buf[9], 9);
}

TEST(TableTest, SchemaLookupAndRowCount) {
  Schema schema({{"a", TypeId::kI64}, {"b", TypeId::kF64}});
  Table t(schema, 100);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.schema().FieldIndex("b"), 1);
  EXPECT_EQ(t.schema().FieldIndex("zz"), -1);
  std::vector<int64_t> a(50, 1);
  ASSERT_TRUE(t.column(0).AppendValues(a.data(), 50).ok());
  EXPECT_EQ(t.num_rows(), 50u);
  EXPECT_TRUE(t.ColumnByName("a").ok());
  EXPECT_TRUE(t.ColumnByName("c").status().IsNotFound());
}

}  // namespace
}  // namespace avm
