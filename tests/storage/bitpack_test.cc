#include "storage/bitpack.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace avm {
namespace {

class BitPackWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitPackWidthTest, RoundTripsRandomValues) {
  const uint32_t width = GetParam();
  Rng rng(width + 1);
  const size_t n = 257;  // odd size exercises straddling boundaries
  std::vector<uint64_t> values(n);
  const uint64_t mask =
      width == 64 ? ~uint64_t{0}
                  : (width == 0 ? 0 : (uint64_t{1} << width) - 1);
  for (auto& v : values) v = rng.Next() & mask;

  std::vector<uint8_t> packed;
  BitPack(values.data(), n, width, &packed);
  std::vector<uint64_t> decoded(n, 0xdeadbeef);
  BitUnpack(packed.data(), n, width, decoded.data());
  EXPECT_EQ(values, decoded) << "width=" << width;
}

TEST_P(BitPackWidthTest, RandomAccessDecode) {
  const uint32_t width = GetParam();
  if (width == 0) return;
  Rng rng(width * 7 + 3);
  const size_t n = 100;
  std::vector<uint64_t> values(n);
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  for (auto& v : values) v = rng.Next() & mask;
  std::vector<uint8_t> packed;
  BitPack(values.data(), n, width, &packed);
  // Decode a middle range only.
  std::vector<uint64_t> part(20);
  BitUnpackAt(packed.data(), 37, 20, width, part.data());
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(part[i], values[37 + i]);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackWidthTest,
                         ::testing::Range(0u, 65u));

TEST(BitPackTest, WidthZeroDecodesZeros) {
  std::vector<uint8_t> packed;
  uint64_t v[4] = {0, 0, 0, 0};
  BitPack(v, 4, 0, &packed);
  EXPECT_TRUE(packed.empty());
  uint64_t out[4] = {9, 9, 9, 9};
  BitUnpack(packed.data(), 4, 0, out);
  for (uint64_t x : out) EXPECT_EQ(x, 0u);
}

TEST(BitPackTest, AppendsToExistingBuffer) {
  std::vector<uint8_t> buf{0xff, 0xee};
  uint64_t v[2] = {5, 6};
  BitPack(v, 2, 4, &buf);
  EXPECT_EQ(buf[0], 0xff);
  EXPECT_EQ(buf[1], 0xee);
  uint64_t out[2];
  BitUnpack(buf.data() + 2, 2, 4, out);
  EXPECT_EQ(out[0], 5u);
  EXPECT_EQ(out[1], 6u);
}

TEST(ZigzagTest, RoundTripsSignedValues) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{123456},
                    int64_t{-123456}, INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
}

TEST(ZigzagTest, SmallMagnitudesStaySmall) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
  EXPECT_EQ(ZigzagEncode(2), 4u);
}

}  // namespace
}  // namespace avm
