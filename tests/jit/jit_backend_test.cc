// Unit tests for the pluggable JIT backend seam: tier resolution, artifact
// compilation/memoization, version hashing, and the process-global
// ArtifactLoader.
#include "jit/jit_backend.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "jit/backend_cc.h"
#include "util/string_util.h"

namespace avm::jit {
namespace {

/// RAII guard that sets an environment variable for one test and restores
/// the previous value (or unsets) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(JitBackendTest, TierAndPolicyNames) {
  EXPECT_STREQ(TierName(JitTier::kFast), "fast");
  EXPECT_STREQ(TierName(JitTier::kOptimized), "opt");
  EXPECT_STREQ(TierPolicyName(TierPolicy::kTiered), "tiered");
  EXPECT_STREQ(TierPolicyName(TierPolicy::kFastOnly), "fast");
  EXPECT_STREQ(TierPolicyName(TierPolicy::kOptimizedOnly), "opt");
}

TEST(JitBackendTest, ResolveTierPolicyReadsEnv) {
  {
    ScopedEnv env("AVM_JIT_TIER", nullptr);
    EXPECT_EQ(ResolveTierPolicy(TierPolicy::kDefault), TierPolicy::kTiered);
  }
  {
    ScopedEnv env("AVM_JIT_TIER", "fast");
    EXPECT_EQ(ResolveTierPolicy(TierPolicy::kDefault), TierPolicy::kFastOnly);
  }
  {
    ScopedEnv env("AVM_JIT_TIER", "opt");
    EXPECT_EQ(ResolveTierPolicy(TierPolicy::kDefault),
              TierPolicy::kOptimizedOnly);
  }
  {
    ScopedEnv env("AVM_JIT_TIER", "tiered");
    EXPECT_EQ(ResolveTierPolicy(TierPolicy::kDefault), TierPolicy::kTiered);
  }
  // Explicit policies pass through untouched regardless of the env.
  {
    ScopedEnv env("AVM_JIT_TIER", "fast");
    EXPECT_EQ(ResolveTierPolicy(TierPolicy::kOptimizedOnly),
              TierPolicy::kOptimizedOnly);
    EXPECT_EQ(ResolveTierPolicy(TierPolicy::kTiered), TierPolicy::kTiered);
  }
}

TEST(JitBackendTest, BackendForTierDispatch) {
  EXPECT_EQ(BackendForTier(JitTier::kFast).tier(), JitTier::kFast);
  EXPECT_EQ(BackendForTier(JitTier::kOptimized).tier(), JitTier::kOptimized);
  EXPECT_STREQ(BackendForTier(JitTier::kFast).name(), "cc-o0");
  EXPECT_STREQ(BackendForTier(JitTier::kOptimized).name(), "cc-o2");
}

TEST(JitBackendTest, VersionHashDistinguishesTiers) {
  // The two tiers compile with different flag sets, so their artifacts must
  // never satisfy each other's disk-cache lookups.
  EXPECT_NE(CcBackendO0().version_hash(), CcBackendO2().version_hash());
  // Stable within a process: the hash is part of on-disk filenames.
  EXPECT_EQ(CcBackendO0().version_hash(), CcBackendO0().version_hash());
}

TEST(JitBackendTest, CompileProducesLoadableArtifact) {
  JitBackend& backend = CcBackendO0();
  if (!backend.Available()) GTEST_SKIP() << "no host compiler";
  const std::string source =
      "extern \"C\" long long avm_backend_probe(long long x) {"
      " return x * 3 + 7; }";
  double seconds = -1;
  auto artifact = backend.Compile(source, "avm_backend_probe", &seconds);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_FALSE(artifact.value().bytes.empty());
  EXPECT_EQ(artifact.value().tier, JitTier::kFast);
  EXPECT_GT(seconds, 0.0);

  auto sym =
      ArtifactLoader::Global().Load(artifact.value(), "avm_backend_probe");
  ASSERT_TRUE(sym.ok()) << sym.status().ToString();
  auto fn = reinterpret_cast<long long (*)(long long)>(sym.value());
  EXPECT_EQ(fn(5), 22);
  EXPECT_EQ(fn(-1), 4);
}

TEST(JitBackendTest, CompileMemoizesIdenticalSources) {
  JitBackend& backend = CcBackendO2();
  if (!backend.Available()) GTEST_SKIP() << "no host compiler";
  const std::string source =
      "extern \"C\" long long avm_backend_memo(long long x) {"
      " return x - 9; }";
  auto first = backend.Compile(source, "avm_backend_memo", nullptr);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  double seconds = -1;
  auto second = backend.Compile(source, "avm_backend_memo", &seconds);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Memo hit: identical bytes, no compiler invocation charged.
  EXPECT_EQ(second.value().bytes, first.value().bytes);
  EXPECT_EQ(seconds, 0.0);
  EXPECT_EQ(second.value().tier, JitTier::kOptimized);
}

TEST(JitBackendTest, CompileFailureCarriesCompilerLog) {
  JitBackend& backend = CcBackendO0();
  if (!backend.Available()) GTEST_SKIP() << "no host compiler";
  auto artifact =
      backend.Compile("this is not C++ at all;", "nope", nullptr);
  ASSERT_FALSE(artifact.ok());
  // The status must carry the compiler's diagnostics, not just "failed".
  EXPECT_NE(artifact.status().ToString().find("error"), std::string::npos)
      << artifact.status().ToString();
}

TEST(JitBackendTest, LoaderRejectsEmptyArtifact) {
  JitArtifact empty;
  auto sym = ArtifactLoader::Global().Load(empty, "whatever");
  EXPECT_FALSE(sym.ok());
}

TEST(JitBackendTest, BackendMemoBoundedByEntryCountWithEviction) {
  if (!CcBackendO0().Available()) GTEST_SKIP() << "no host compiler";
  // Private backend with a tiny memo: churning distinct traces past the
  // cap must evict oldest-first and keep compiling correctly.
  CcBackend backend("cc-test", JitTier::kFast, "-O0",
                    /*memo_max_entries=*/3);
  auto source_for = [](int i) {
    return StrFormat(
        "extern \"C\" long long avm_churn_%d(long long x) {"
        " return x + %d; }",
        i, i);
  };
  for (int i = 0; i < 8; ++i) {
    auto a = backend.Compile(source_for(i), StrFormat("avm_churn_%d", i),
                             nullptr);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_LE(backend.memo_entries(), 3u) << "after compile " << i;
  }
  EXPECT_EQ(backend.memo_entries(), 3u);

  // The oldest source was evicted: recompiling it invokes the compiler
  // again (nonzero wall time) and still yields a working artifact.
  double seconds = -1;
  auto again = backend.Compile(source_for(0), "avm_churn_0", &seconds);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_GT(seconds, 0.0) << "evicted entry should have recompiled";
  auto sym = ArtifactLoader::Global().Load(again.value(), "avm_churn_0");
  ASSERT_TRUE(sym.ok()) << sym.status().ToString();
  EXPECT_EQ(reinterpret_cast<long long (*)(long long)>(sym.value())(10), 10);

  // The newest survivor is still a memo hit (zero compile time).
  seconds = -1;
  ASSERT_TRUE(backend.Compile(source_for(7), "avm_churn_7", &seconds).ok());
  EXPECT_EQ(seconds, 0.0);
}

TEST(JitBackendTest, BackendMemoBoundedByTotalBytes) {
  if (!CcBackendO0().Available()) GTEST_SKIP() << "no host compiler";
  // A 1-byte cap means no artifact is ever retained — every compile evicts
  // itself — yet compilation keeps working.
  CcBackend backend("cc-test-bytes", JitTier::kFast, "-O0",
                    /*memo_max_entries=*/64, /*memo_max_bytes=*/1);
  const std::string source =
      "extern \"C\" long long avm_bytecap(long long x) { return x; }";
  for (int rep = 0; rep < 2; ++rep) {
    double seconds = -1;
    auto a = backend.Compile(source, "avm_bytecap", &seconds);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_GT(seconds, 0.0) << "rep " << rep;  // never a memo hit
    EXPECT_EQ(backend.memo_entries(), 0u);
    EXPECT_EQ(backend.memo_bytes(), 0u);
  }
}

TEST(JitBackendTest, LoaderMemoBoundedWithReloadAfterEviction) {
  JitBackend& backend = CcBackendO0();
  if (!backend.Available()) GTEST_SKIP() << "no host compiler";
  ArtifactLoader loader(/*memo_limit=*/2);
  std::vector<JitArtifact> artifacts;
  std::vector<std::string> symbols;
  for (int i = 0; i < 4; ++i) {
    symbols.push_back(StrFormat("avm_loader_churn_%d", i));
    auto a = backend.Compile(
        StrFormat("extern \"C\" long long %s(long long x) {"
                  " return x * %d; }",
                  symbols.back().c_str(), i + 2),
        symbols.back(), nullptr);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    artifacts.push_back(std::move(a.value()));
    auto sym = loader.Load(artifacts.back(), symbols.back());
    ASSERT_TRUE(sym.ok()) << sym.status().ToString();
    EXPECT_LE(loader.memo_entries(), 2u) << "after load " << i;
  }
  EXPECT_EQ(loader.memo_entries(), 2u);
  // Artifact 0 was evicted from the memo; re-loading dlopens a fresh copy
  // that must still resolve and run.
  auto sym = loader.Load(artifacts[0], symbols[0]);
  ASSERT_TRUE(sym.ok()) << sym.status().ToString();
  EXPECT_EQ(reinterpret_cast<long long (*)(long long)>(sym.value())(21), 42);
}

TEST(JitBackendTest, LoaderMemoizesByBytesAndSymbol) {
  JitBackend& backend = CcBackendO0();
  if (!backend.Available()) GTEST_SKIP() << "no host compiler";
  const std::string source =
      "extern \"C\" long long avm_loader_memo(long long x) {"
      " return x + 1; }";
  auto artifact = backend.Compile(source, "avm_loader_memo", nullptr);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  auto a = ArtifactLoader::Global().Load(artifact.value(), "avm_loader_memo");
  auto b = ArtifactLoader::Global().Load(artifact.value(), "avm_loader_memo");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same bytes + same symbol map to one loaded instance.
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace avm::jit
