// The JIT scratch directory must honor TMPDIR (fallback /tmp). This lives
// in its own test binary: the scratch dir is a lazily-initialized
// process-wide static, so TMPDIR has to be set before ANY JIT activity —
// impossible to guarantee inside the shared jit_backend_test binary.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "jit/backend_cc.h"
#include "jit/jit_backend.h"

namespace avm::jit {
namespace {

TEST(ScratchDirTest, HonorsTmpdirAtFirstUse) {
  // Point TMPDIR at a private directory before the first JitScratchDir()
  // call of this process (trailing slash on purpose: it must be handled).
  char base_tmpl[] = "/tmp/avm_scratch_base_XXXXXX";
  ASSERT_NE(mkdtemp(base_tmpl), nullptr);
  const std::string base = base_tmpl;
  ASSERT_EQ(::setenv("TMPDIR", (base + "/").c_str(), 1), 0);

  const std::string& dir = JitScratchDir();
  EXPECT_EQ(dir.rfind(base + "/avm_jit_", 0), 0u)
      << "scratch dir " << dir << " not under TMPDIR " << base;

  struct stat st {};
  ASSERT_EQ(::stat(dir.c_str(), &st), 0) << dir;
  EXPECT_TRUE(S_ISDIR(st.st_mode));

  // Memoized: later TMPDIR changes do not move the scratch dir.
  ASSERT_EQ(::setenv("TMPDIR", "/tmp", 1), 0);
  EXPECT_EQ(&JitScratchDir(), &dir);
  EXPECT_EQ(JitScratchDir(), dir);

  // The whole pipeline — compile scratch files, artifact materialization
  // for dlopen — works out of the redirected directory.
  JitBackend& backend = CcBackendO0();
  if (!backend.Available()) GTEST_SKIP() << "no host compiler";
  const std::string source =
      "extern \"C\" long long avm_tmpdir_probe(long long x) {"
      " return x * 2 + 1; }";
  auto artifact = backend.Compile(source, "avm_tmpdir_probe", nullptr);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  auto sym = ArtifactLoader::Global().Load(artifact.value(), "avm_tmpdir_probe");
  ASSERT_TRUE(sym.ok()) << sym.status().ToString();
  auto fn = reinterpret_cast<long long (*)(long long)>(sym.value());
  EXPECT_EQ(fn(20), 41);
}

}  // namespace
}  // namespace avm::jit
