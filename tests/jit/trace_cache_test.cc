#include "jit/trace_cache.h"

#include <gtest/gtest.h>

namespace avm::jit {
namespace {

TEST(SelectivityBucketTest, Buckets) {
  EXPECT_EQ(BucketOf(0.01), SelectivityBucket::kLow);
  EXPECT_EQ(BucketOf(0.5), SelectivityBucket::kMid);
  EXPECT_EQ(BucketOf(0.99), SelectivityBucket::kHigh);
  EXPECT_STREQ(BucketName(SelectivityBucket::kLow), "low");
}

TEST(SituationTest, KeyDependsOnEveryComponent) {
  Situation base;
  base.trace_fingerprint = 123;
  base.schemes["col"] = Scheme::kFor;
  base.selectivity = SelectivityBucket::kMid;

  Situation other = base;
  other.trace_fingerprint = 124;
  EXPECT_NE(base.Key(), other.Key());

  other = base;
  other.schemes["col"] = Scheme::kPlain;
  EXPECT_NE(base.Key(), other.Key());

  other = base;
  other.schemes["col2"] = Scheme::kRle;
  EXPECT_NE(base.Key(), other.Key());

  other = base;
  other.selectivity = SelectivityBucket::kHigh;
  EXPECT_NE(base.Key(), other.Key());

  EXPECT_EQ(base.Key(), base.Key());
}

TEST(SituationTest, ToStringHumanReadable) {
  Situation s;
  s.trace_fingerprint = 42;
  s.schemes["price"] = Scheme::kFor;
  std::string str = s.ToString();
  EXPECT_NE(str.find("price=for"), std::string::npos);
}

TEST(TraceCacheTest, InsertFindHitMissCounters) {
  TraceCache cache;
  Situation a;
  a.trace_fingerprint = 1;
  Situation b;
  b.trace_fingerprint = 2;

  EXPECT_EQ(cache.Find(a), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  CompiledTrace t;
  t.meta.name = "trace-a";
  cache.Insert(a, std::move(t));
  const CompiledTrace* found = cache.Find(a);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->meta.name, "trace-a");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.Find(b), nullptr);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCacheTest, OverwriteSameSituation) {
  TraceCache cache;
  Situation s;
  s.trace_fingerprint = 9;
  CompiledTrace t1;
  t1.meta.name = "v1";
  CompiledTrace t2;
  t2.meta.name = "v2";
  cache.Insert(s, std::move(t1));
  cache.Insert(s, std::move(t2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Find(s)->meta.name, "v2");
}

}  // namespace
}  // namespace avm::jit
