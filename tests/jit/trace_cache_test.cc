#include "jit/trace_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace avm::jit {
namespace {

TEST(SelectivityBucketTest, Buckets) {
  EXPECT_EQ(BucketOf(0.01), SelectivityBucket::kLow);
  EXPECT_EQ(BucketOf(0.5), SelectivityBucket::kMid);
  EXPECT_EQ(BucketOf(0.99), SelectivityBucket::kHigh);
  EXPECT_STREQ(BucketName(SelectivityBucket::kLow), "low");
}

TEST(SituationTest, KeyDependsOnEveryComponent) {
  Situation base;
  base.trace_fingerprint = 123;
  base.schemes["col"] = Scheme::kFor;
  base.selectivity = SelectivityBucket::kMid;

  Situation other = base;
  other.trace_fingerprint = 124;
  EXPECT_NE(base.Key(), other.Key());

  other = base;
  other.schemes["col"] = Scheme::kPlain;
  EXPECT_NE(base.Key(), other.Key());

  other = base;
  other.schemes["col2"] = Scheme::kRle;
  EXPECT_NE(base.Key(), other.Key());

  other = base;
  other.selectivity = SelectivityBucket::kHigh;
  EXPECT_NE(base.Key(), other.Key());

  EXPECT_EQ(base.Key(), base.Key());
}

TEST(SituationTest, ToStringHumanReadable) {
  Situation s;
  s.trace_fingerprint = 42;
  s.schemes["price"] = Scheme::kFor;
  std::string str = s.ToString();
  EXPECT_NE(str.find("price=for"), std::string::npos);
}

TEST(TraceCacheTest, InsertFindHitMissCounters) {
  TraceCache cache;
  Situation a;
  a.trace_fingerprint = 1;
  Situation b;
  b.trace_fingerprint = 2;

  EXPECT_EQ(cache.Find(a), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  CompiledTrace t;
  t.meta.name = "trace-a";
  cache.Insert(a, std::move(t));
  std::shared_ptr<TraceEntry> found = cache.Find(a);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->meta().name, "trace-a");
  EXPECT_EQ(found->situation_key(), a.Key());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.Find(b), nullptr);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCacheTest, OverwriteSameSituation) {
  TraceCache cache;
  Situation s;
  s.trace_fingerprint = 9;
  CompiledTrace t1;
  t1.meta.name = "v1";
  CompiledTrace t2;
  t2.meta.name = "v2";
  cache.Insert(s, std::move(t1));
  cache.Insert(s, std::move(t2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Find(s)->meta().name, "v2");
}

TEST(TraceCacheTest, ConcurrentInsertAndFind) {
  // Morsel workers share one cache: many threads inserting distinct
  // situations while all threads look up the full key space. Entries handed
  // out must stay valid even while the map rehashes under inserts.
  TraceCache cache;
  constexpr int kThreads = 8;
  constexpr int kSituationsPerThread = 64;
  std::atomic<uint64_t> found{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSituationsPerThread; ++i) {
        Situation s;
        s.trace_fingerprint =
            static_cast<uint64_t>(t) * kSituationsPerThread + i;
        CompiledTrace trace;
        trace.meta.name = "t" + std::to_string(t) + "-" + std::to_string(i);
        cache.Insert(s, std::move(trace));
        // Probe the whole key space, holding entries across further inserts.
        for (int probe = 0; probe < kThreads * kSituationsPerThread;
             probe += 17) {
          Situation q;
          q.trace_fingerprint = static_cast<uint64_t>(probe);
          std::shared_ptr<TraceEntry> hit = cache.Find(q);
          if (hit != nullptr) {
            found.fetch_add(1);
            ASSERT_FALSE(hit->meta().name.empty());
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.size(),
            static_cast<size_t>(kThreads) * kSituationsPerThread);
  EXPECT_GT(found.load(), 0u);
  // Every insert was preceded by zero Finds of that key from its own
  // thread, so hits + misses must equal total probes.
  EXPECT_EQ(cache.hits(), found.load());
}

TEST(TraceCacheTest, ConcurrentSameSituationOverwrite) {
  // Two workers racing to compile the same situation: last insert wins and
  // readers never observe a torn entry.
  TraceCache cache;
  Situation s;
  s.trace_fingerprint = 77;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        CompiledTrace trace;
        trace.meta.name = "worker" + std::to_string(t);
        cache.Insert(s, std::move(trace));
        auto hit = cache.Find(s);
        ASSERT_NE(hit, nullptr);
        ASSERT_EQ(hit->meta().name.rfind("worker", 0), 0u);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace avm::jit
