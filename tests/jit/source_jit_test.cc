#include "jit/source_jit.h"

#include <gtest/gtest.h>

namespace avm::jit {
namespace {

constexpr const char* kAddSource = R"(
extern "C" long avm_test_add(long a, long b) { return a + b; }
)";

TEST(SourceJitTest, CompilerAvailableInBuildEnvironment) {
  // The build environment compiled this test, so a compiler must exist.
  EXPECT_TRUE(SourceJit::Available());
}

TEST(SourceJitTest, CompilesAndRuns) {
  if (!SourceJit::Available()) GTEST_SKIP();
  SourceJit jit;
  auto sym = jit.CompileAndLoad(kAddSource, "avm_test_add");
  ASSERT_TRUE(sym.ok()) << sym.status().ToString();
  auto fn = reinterpret_cast<long (*)(long, long)>(sym.value());
  EXPECT_EQ(fn(20, 22), 42);
  EXPECT_EQ(jit.stats().compilations, 1u);
  EXPECT_GT(jit.stats().total_compile_seconds, 0.0);
}

TEST(SourceJitTest, CachesIdenticalSource) {
  if (!SourceJit::Available()) GTEST_SKIP();
  SourceJit jit;
  auto a = jit.CompileAndLoad(kAddSource, "avm_test_add");
  auto b = jit.CompileAndLoad(kAddSource, "avm_test_add");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(jit.stats().compilations, 1u);
  EXPECT_EQ(jit.stats().cache_hits, 1u);
}

TEST(SourceJitTest, ReportsCompileErrors) {
  if (!SourceJit::Available()) GTEST_SKIP();
  SourceJit jit;
  auto r = jit.CompileAndLoad("this is not C++;", "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCompilationError());
  EXPECT_FALSE(r.status().message().empty());
}

TEST(SourceJitTest, MissingSymbolRejected) {
  if (!SourceJit::Available()) GTEST_SKIP();
  SourceJit jit;
  auto r = jit.CompileAndLoad("extern \"C\" void something_else() {}\n",
                              "wrong_name");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCompilationError());
}

TEST(SourceJitTest, GlobalIsSingleton) {
  EXPECT_EQ(&SourceJit::Global(), &SourceJit::Global());
}

}  // namespace
}  // namespace avm::jit
