#include "jit/codegen.h"

#include <gtest/gtest.h>

#include "dsl/builder.h"
#include "dsl/typecheck.h"

namespace avm::jit {
namespace {

struct Fixture {
  dsl::Program program;
  ir::DepGraph graph;
  std::vector<ir::Trace> traces;
};

Fixture MakeFig2Fixture(bool allow_filter) {
  Fixture fx;
  fx.program = dsl::MakeFigure2Program(4096);
  EXPECT_TRUE(dsl::TypeCheck(&fx.program).ok());
  auto g = ir::DepGraph::Build(fx.program);
  EXPECT_TRUE(g.ok());
  fx.graph = std::move(g).value();
  ir::PartitionConstraints c;
  c.allow_filter = allow_filter;
  fx.traces = ir::GreedyPartition(fx.graph, c);
  return fx;
}

TEST(CodegenTest, Fig2TopTraceGenerates) {
  Fixture fx = MakeFig2Fixture(false);
  ASSERT_FALSE(fx.traces.empty());
  auto gen = GenerateTrace(fx.program, fx.graph, fx.traces[0]);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  const GeneratedTrace& t = gen.value();
  // The fused loop multiplies by two: the constant must be inlined.
  EXPECT_NE(t.source.find("extern \"C\""), std::string::npos);
  EXPECT_NE(t.source.find("2LL"), std::string::npos);
  EXPECT_FALSE(t.symbol.empty());
  EXPECT_FALSE(t.covered_stmt_ids.empty());
  // Reads some_data, writes v, and exposes the escaping values.
  bool reads_some_data = false;
  for (const auto& in : t.inputs) {
    if (in.name == "some_data") {
      reads_some_data = true;
      EXPECT_EQ(in.kind, TraceInputSpec::Kind::kDataRead);
      ASSERT_TRUE(in.pos.valid());
      EXPECT_EQ(in.pos.ToString(), "i");
    }
  }
  EXPECT_TRUE(reads_some_data);
  bool writes_v = false, exposes_a = false;
  for (const auto& out : t.outputs) {
    if (out.kind == TraceOutputSpec::Kind::kDataWrite && out.name == "v") {
      writes_v = true;
      EXPECT_FALSE(out.condensed);
    }
    if (out.kind == TraceOutputSpec::Kind::kArrayVar && out.name == "a") {
      exposes_a = true;
    }
  }
  EXPECT_TRUE(writes_v);
  EXPECT_TRUE(exposes_a);
}

TEST(CodegenTest, FilterTraceEmitsGuardAndCount) {
  Fixture fx = MakeFig2Fixture(true);
  // Find a trace containing the filter.
  const ir::Trace* with_filter = nullptr;
  for (const auto& t : fx.traces) {
    for (uint32_t id : t.node_ids) {
      if (fx.graph.nodes()[id].kind == dsl::SkeletonKind::kFilter) {
        with_filter = &t;
      }
    }
  }
  ASSERT_NE(with_filter, nullptr);
  auto gen = GenerateTrace(fx.program, fx.graph, *with_filter);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_NE(gen.value().source.find("continue;"), std::string::npos);
  EXPECT_NE(gen.value().source.find("cnt"), std::string::npos);
  // The condensed output must be flagged.
  bool condensed_out = false;
  for (const auto& o : gen.value().outputs) condensed_out |= o.condensed;
  EXPECT_TRUE(condensed_out);
}

TEST(CodegenTest, FilterEscapingTraceRejected) {
  // A trace holding only {filter} must be rejected: its selection vector
  // cannot cross the compiled-code boundary.
  Fixture fx = MakeFig2Fixture(true);
  int filter_node = -1;
  for (const auto& n : fx.graph.nodes()) {
    if (n.kind == dsl::SkeletonKind::kFilter) filter_node = n.id;
  }
  ASSERT_GE(filter_node, 0);
  ir::Trace t;
  t.node_ids = {static_cast<uint32_t>(filter_node)};
  t.inputs = {"a"};
  t.outputs = {"t"};
  EXPECT_FALSE(GenerateTrace(fx.program, fx.graph, t).ok());
}

TEST(CodegenTest, CondenseWithoutFilterRejected) {
  Fixture fx = MakeFig2Fixture(true);
  int condense_node = -1;
  for (const auto& n : fx.graph.nodes()) {
    if (n.kind == dsl::SkeletonKind::kCondense) condense_node = n.id;
  }
  ASSERT_GE(condense_node, 0);
  ir::Trace t;
  t.node_ids = {static_cast<uint32_t>(condense_node)};
  t.inputs = {"t"};
  t.outputs = {"b"};
  EXPECT_FALSE(GenerateTrace(fx.program, fx.graph, t).ok());
}

TEST(CodegenTest, SchemeSpecializationEmitsDeltaPath) {
  Fixture fx = MakeFig2Fixture(false);
  ASSERT_FALSE(fx.traces.empty());
  CodegenOptions opts;
  opts.scheme_specialization["some_data"] = Scheme::kFor;
  auto gen = GenerateTrace(fx.program, fx.graph, fx.traces[0], opts);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  // The compressed-execution path adds reference + uint32 delta.
  EXPECT_NE(gen.value().source.find("uint32_t*)in["), std::string::npos);
  EXPECT_EQ(gen.value().scheme_requirements.at("some_data"), Scheme::kFor);
  bool has_ref_capture = false;
  for (const auto& [name, type] : gen.value().captures_i) {
    if (name == "__for_ref_some_data") has_ref_capture = true;
  }
  EXPECT_TRUE(has_ref_capture);
  // Input spec switched to delta form.
  bool delta_input = false;
  for (const auto& in : gen.value().inputs) {
    if (in.kind == TraceInputSpec::Kind::kForDeltas) delta_input = true;
  }
  EXPECT_TRUE(delta_input);
}

TEST(CodegenTest, SelLoopAndDenseLoopBothEmitted) {
  Fixture fx = MakeFig2Fixture(false);
  auto gen = GenerateTrace(fx.program, fx.graph, fx.traces[0]);
  ASSERT_TRUE(gen.ok());
  const std::string& src = gen.value().source;
  EXPECT_NE(src.find("if (sel != nullptr)"), std::string::npos);
  EXPECT_NE(src.find("i = sel[j]"), std::string::npos);
  EXPECT_NE(src.find("for (uint32_t i = 0; i < n; ++i)"), std::string::npos);
}

TEST(CodegenTest, SymbolsAreContentDeterministic) {
  // Identical traces generate identical symbols (and identical source), so
  // the source-JIT cache deduplicates compilation work; a differently
  // specialized variant gets a different symbol.
  Fixture fx = MakeFig2Fixture(false);
  auto a = GenerateTrace(fx.program, fx.graph, fx.traces[0]);
  auto b = GenerateTrace(fx.program, fx.graph, fx.traces[0]);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().symbol, b.value().symbol);
  EXPECT_EQ(a.value().source, b.value().source);
  CodegenOptions opts;
  opts.scheme_specialization["some_data"] = Scheme::kFor;
  auto c = GenerateTrace(fx.program, fx.graph, fx.traces[0], opts);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().symbol, c.value().symbol);
}

}  // namespace
}  // namespace avm::jit
