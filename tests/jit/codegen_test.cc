#include "jit/codegen.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dsl/builder.h"
#include "dsl/typecheck.h"

namespace avm::jit {
namespace {

struct Fixture {
  dsl::Program program;
  ir::DepGraph graph;
  std::vector<ir::Trace> traces;
};

Fixture MakeFig2Fixture(bool allow_filter) {
  Fixture fx;
  fx.program = dsl::MakeFigure2Program(4096);
  EXPECT_TRUE(dsl::TypeCheck(&fx.program).ok());
  auto g = ir::DepGraph::Build(fx.program);
  EXPECT_TRUE(g.ok());
  fx.graph = std::move(g).value();
  ir::PartitionConstraints c;
  c.allow_filter = allow_filter;
  fx.traces = ir::GreedyPartition(fx.graph, c);
  return fx;
}

TEST(CodegenTest, Fig2TopTraceGenerates) {
  Fixture fx = MakeFig2Fixture(false);
  ASSERT_FALSE(fx.traces.empty());
  auto gen = GenerateTrace(fx.program, fx.graph, fx.traces[0]);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  const GeneratedTrace& t = gen.value();
  // The fused loop multiplies by two: the constant must be inlined.
  EXPECT_NE(t.source.find("extern \"C\""), std::string::npos);
  EXPECT_NE(t.source.find("2LL"), std::string::npos);
  EXPECT_FALSE(t.symbol.empty());
  EXPECT_FALSE(t.covered_stmt_ids.empty());
  // Reads some_data, writes v, and exposes the escaping values.
  bool reads_some_data = false;
  for (const auto& in : t.inputs) {
    if (in.name == "some_data") {
      reads_some_data = true;
      EXPECT_EQ(in.kind, TraceInputSpec::Kind::kDataRead);
      ASSERT_TRUE(in.pos.valid());
      EXPECT_EQ(in.pos.ToString(), "i");
    }
  }
  EXPECT_TRUE(reads_some_data);
  bool writes_v = false, exposes_a = false;
  for (const auto& out : t.outputs) {
    if (out.kind == TraceOutputSpec::Kind::kDataWrite && out.name == "v") {
      writes_v = true;
      EXPECT_FALSE(out.condensed);
    }
    if (out.kind == TraceOutputSpec::Kind::kArrayVar && out.name == "a") {
      exposes_a = true;
    }
  }
  EXPECT_TRUE(writes_v);
  EXPECT_TRUE(exposes_a);
}

TEST(CodegenTest, FilterTraceEmitsGuardAndCount) {
  Fixture fx = MakeFig2Fixture(true);
  // Find a trace containing the filter.
  const ir::Trace* with_filter = nullptr;
  for (const auto& t : fx.traces) {
    for (uint32_t id : t.node_ids) {
      if (fx.graph.nodes()[id].kind == dsl::SkeletonKind::kFilter) {
        with_filter = &t;
      }
    }
  }
  ASSERT_NE(with_filter, nullptr);
  auto gen = GenerateTrace(fx.program, fx.graph, *with_filter);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_NE(gen.value().source.find("continue;"), std::string::npos);
  EXPECT_NE(gen.value().source.find("cnt"), std::string::npos);
  // The condensed output must be flagged.
  bool condensed_out = false;
  for (const auto& o : gen.value().outputs) condensed_out |= o.condensed;
  EXPECT_TRUE(condensed_out);
}

TEST(CodegenTest, FilterEscapingTraceRejected) {
  // A trace holding only {filter} must be rejected: its selection vector
  // cannot cross the compiled-code boundary.
  Fixture fx = MakeFig2Fixture(true);
  int filter_node = -1;
  for (const auto& n : fx.graph.nodes()) {
    if (n.kind == dsl::SkeletonKind::kFilter) filter_node = n.id;
  }
  ASSERT_GE(filter_node, 0);
  ir::Trace t;
  t.node_ids = {static_cast<uint32_t>(filter_node)};
  t.inputs = {"a"};
  t.outputs = {"t"};
  EXPECT_FALSE(GenerateTrace(fx.program, fx.graph, t).ok());
}

TEST(CodegenTest, CondenseWithoutFilterRejected) {
  Fixture fx = MakeFig2Fixture(true);
  int condense_node = -1;
  for (const auto& n : fx.graph.nodes()) {
    if (n.kind == dsl::SkeletonKind::kCondense) condense_node = n.id;
  }
  ASSERT_GE(condense_node, 0);
  ir::Trace t;
  t.node_ids = {static_cast<uint32_t>(condense_node)};
  t.inputs = {"t"};
  t.outputs = {"b"};
  EXPECT_FALSE(GenerateTrace(fx.program, fx.graph, t).ok());
}

TEST(CodegenTest, SchemeSpecializationEmitsDeltaPath) {
  Fixture fx = MakeFig2Fixture(false);
  ASSERT_FALSE(fx.traces.empty());
  CodegenOptions opts;
  opts.scheme_specialization["some_data"] = Scheme::kFor;
  auto gen = GenerateTrace(fx.program, fx.graph, fx.traces[0], opts);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  // The compressed-execution path adds reference + uint32 delta.
  EXPECT_NE(gen.value().source.find("uint32_t*)in["), std::string::npos);
  EXPECT_EQ(gen.value().scheme_requirements.at("some_data"), Scheme::kFor);
  bool has_ref_capture = false;
  for (const auto& [name, type] : gen.value().captures_i) {
    if (name == "__for_ref_some_data") has_ref_capture = true;
  }
  EXPECT_TRUE(has_ref_capture);
  // Input spec switched to delta form.
  bool delta_input = false;
  for (const auto& in : gen.value().inputs) {
    if (in.kind == TraceInputSpec::Kind::kForDeltas) delta_input = true;
  }
  EXPECT_TRUE(delta_input);
}

TEST(CodegenTest, PositionalVariantEmitsSingleDenseLoop) {
  // Without selection specialization the trace is the positional variant:
  // one fused loop over all rows, no selected pass.
  Fixture fx = MakeFig2Fixture(false);
  auto gen = GenerateTrace(fx.program, fx.graph, fx.traces[0]);
  ASSERT_TRUE(gen.ok());
  const std::string& src = gen.value().source;
  EXPECT_NE(src.find("for (uint32_t i = 0; i < n; ++i)"), std::string::npos);
  EXPECT_EQ(src.find("args->sel[j]"), std::string::npos);
  EXPECT_TRUE(gen.value().sel_inputs.empty());
}

TEST(CodegenTest, SelSpecializedVariantEmitsSelectedPass) {
  // Specializing a chunk input as selection-carrying emits the selected
  // pass (i = sel[j]) and a distinct symbol; the consuming map's output is
  // flagged selection-dependent so the harness republishes the selection.
  using namespace dsl;
  Program p;
  p.data = {{"src", TypeId::kI64, false}};
  std::vector<StmtPtr> body;
  body.push_back(Let("input", Skeleton(SkeletonKind::kRead,
                                       {Var("i"), Var("src")})));
  body.push_back(Let(
      "t", Skeleton(SkeletonKind::kFilter,
                    {Lambda({"x"}, Call(ScalarOp::kGt,
                                        {Var("x"), ConstI(0)})),
                     Var("input")})));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(3)),
                                    Var("t")})));
  body.push_back(Assign(
      "i", Var("i") + Skeleton(SkeletonKind::kLen, {Var("input")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(4096)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  ASSERT_TRUE(TypeCheck(&p).ok());
  auto g = ir::DepGraph::Build(p);
  ASSERT_TRUE(g.ok());
  int map_node = -1;
  for (const auto& n : g.value().nodes()) {
    if (n.kind == SkeletonKind::kMap) map_node = static_cast<int>(n.id);
  }
  ASSERT_GE(map_node, 0);
  ir::Trace tr;
  tr.node_ids = {static_cast<uint32_t>(map_node)};
  tr.inputs = {"t"};
  tr.outputs = {"y"};

  auto gen_pos = GenerateTrace(p, g.value(), tr);
  ASSERT_TRUE(gen_pos.ok()) << gen_pos.status().ToString();
  CodegenOptions opts;
  opts.sel_inputs.insert("t");
  auto gen_sel = GenerateTrace(p, g.value(), tr, opts);
  ASSERT_TRUE(gen_sel.ok()) << gen_sel.status().ToString();
  const std::string& src = gen_sel.value().source;
  EXPECT_NE(src.find("args->sel[j]"), std::string::npos);
  EXPECT_NE(gen_sel.value().symbol, gen_pos.value().symbol);
  ASSERT_EQ(gen_sel.value().sel_inputs.size(), 1u);
  EXPECT_EQ(gen_sel.value().sel_inputs[0], "t");
  bool sel_dep_out = false;
  for (const auto& o : gen_sel.value().outputs) {
    if (o.kind == TraceOutputSpec::Kind::kArrayVar && o.name == "y") {
      sel_dep_out = o.sel_dependent;
    }
  }
  EXPECT_TRUE(sel_dep_out);
}

TEST(CodegenTest, SymbolsAreContentDeterministic) {
  // Identical traces generate identical symbols (and identical source), so
  // the source-JIT cache deduplicates compilation work; a differently
  // specialized variant gets a different symbol.
  Fixture fx = MakeFig2Fixture(false);
  auto a = GenerateTrace(fx.program, fx.graph, fx.traces[0]);
  auto b = GenerateTrace(fx.program, fx.graph, fx.traces[0]);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().symbol, b.value().symbol);
  EXPECT_EQ(a.value().source, b.value().source);
  CodegenOptions opts;
  opts.scheme_specialization["some_data"] = Scheme::kFor;
  auto c = GenerateTrace(fx.program, fx.graph, fx.traces[0], opts);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value().symbol, c.value().symbol);
}

TEST(CodegenTest, StaleInTraceCaptureDeclined) {
  // A map capturing the let-bound count of a write in the SAME trace: the
  // capture resolves before the call (previous iteration's value), while
  // interpretation uses the fresh count — the shape must decline.
  using namespace dsl;
  Program p;
  p.data = {{"src", TypeId::kI64, false},
            {"out", TypeId::kI64, true},
            {"out2", TypeId::kI64, true}};
  std::vector<StmtPtr> body;
  body.push_back(Let("v", Skeleton(SkeletonKind::kRead,
                                   {Var("i"), Var("src")})));
  body.push_back(Let("w", Skeleton(SkeletonKind::kWrite,
                                   {Var("out"), Var("i"), Var("v")})));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * Var("w")),
                                    Var("v")})));
  body.push_back(ExprStmt(Skeleton(SkeletonKind::kWrite,
                                   {Var("out2"), Var("i"), Var("y")})));
  body.push_back(Assign("i", Var("i") + Skeleton(SkeletonKind::kLen,
                                                 {Var("v")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(4096)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  ASSERT_TRUE(TypeCheck(&p).ok());
  auto g = ir::DepGraph::Build(p);
  ASSERT_TRUE(g.ok());
  ir::PartitionConstraints c;
  auto traces = ir::GreedyPartition(g.value(), c);
  // However the partitioner cuts it, no generated trace may contain both
  // the write producing 'w' and the map capturing it.
  for (const auto& tr : traces) {
    bool has_w_write = false, has_capture_map = false;
    for (uint32_t id : tr.node_ids) {
      const ir::DepNode& n = g.value().nodes()[id];
      if (n.kind == dsl::SkeletonKind::kWrite &&
          g.value().OutputNameOf(id) == "w") {
        has_w_write = true;
      }
      if (n.kind == dsl::SkeletonKind::kMap &&
          g.value().OutputNameOf(id) == "y") {
        has_capture_map = true;
      }
    }
    if (has_w_write && has_capture_map) {
      auto gen = GenerateTrace(p, g.value(), tr);
      ASSERT_FALSE(gen.ok()) << gen.value().source;
      EXPECT_NE(gen.status().ToString().find("stale"), std::string::npos)
          << gen.status().ToString();
    }
  }
  // And the explicit co-resident trace declines regardless of partition.
  int write_w = -1, map_y = -1;
  for (const auto& n : g.value().nodes()) {
    if (n.kind == dsl::SkeletonKind::kWrite &&
        g.value().OutputNameOf(n.id) == "w") {
      write_w = static_cast<int>(n.id);
    }
    if (n.kind == dsl::SkeletonKind::kMap) map_y = static_cast<int>(n.id);
  }
  ASSERT_GE(write_w, 0);
  ASSERT_GE(map_y, 0);
  ir::Trace tr;
  tr.node_ids = {static_cast<uint32_t>(std::min(write_w, map_y)),
                 static_cast<uint32_t>(std::max(write_w, map_y))};
  tr.inputs = {"v"};
  tr.outputs = {"y"};
  auto gen = GenerateTrace(p, g.value(), tr);
  ASSERT_FALSE(gen.ok());
  EXPECT_NE(gen.status().ToString().find("stale"), std::string::npos)
      << gen.status().ToString();
}


TEST(CodegenTest, ArrayConflictAcrossStatementSpanDeclined) {
  // stmt0: idx map; stmt1: scatter into X (interpreted — outside the
  // trace); stmt2: gather from X. A trace {stmt0, stmt2} hoisted to its
  // anchor would gather from X BEFORE the interpreted scatter ran — the
  // data-array flavor of the stale-value hazard. Both the shared
  // convexity helper and GenerateTrace must reject it.
  using namespace dsl;
  Program p;
  p.data = {{"src", TypeId::kI64, false},
            {"X", TypeId::kI64, true},
            {"out", TypeId::kI64, true}};
  std::vector<StmtPtr> body;
  body.push_back(Let("v", Skeleton(SkeletonKind::kRead,
                                   {Var("i"), Var("src")})));
  body.push_back(Let("idx", Skeleton(SkeletonKind::kMap,
                                     {Lambda({"x"}, Call(ScalarOp::kMod,
                                                         {Call(ScalarOp::kAbs,
                                                               {Var("x")}),
                                                          ConstI(64)})),
                                      Var("v")})));
  body.push_back(ExprStmt(Skeleton(
      SkeletonKind::kScatter,
      {Var("X"), Var("idx"), Var("v"),
       Lambda({"o", "n"}, Var("o") + Var("n"))})));
  body.push_back(Let("g", Skeleton(SkeletonKind::kGather,
                                   {Var("X"), Var("idx")})));
  body.push_back(ExprStmt(Skeleton(SkeletonKind::kWrite,
                                   {Var("out"), Var("i"), Var("g")})));
  body.push_back(Assign("i", Var("i") + Skeleton(SkeletonKind::kLen,
                                                 {Var("v")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(4096)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  ASSERT_TRUE(TypeCheck(&p).ok());
  auto g = ir::DepGraph::Build(p);
  ASSERT_TRUE(g.ok());
  int map_idx = -1, gather_g = -1, scatter_x = -1;
  for (const auto& n : g.value().nodes()) {
    if (n.kind == dsl::SkeletonKind::kMap) map_idx = static_cast<int>(n.id);
    if (n.kind == dsl::SkeletonKind::kGather) gather_g = static_cast<int>(n.id);
    if (n.kind == dsl::SkeletonKind::kScatter) scatter_x = static_cast<int>(n.id);
  }
  ASSERT_GE(map_idx, 0);
  ASSERT_GE(gather_g, 0);
  ASSERT_GE(scatter_x, 0);

  // Outside writer inside the span.
  ir::Trace across;
  across.node_ids = {static_cast<uint32_t>(map_idx),
                     static_cast<uint32_t>(gather_g)};
  across.inputs = {"v"};
  across.outputs = {"g"};
  EXPECT_GE(ir::StmtConvexityViolation(g.value(), across.node_ids), 0);
  auto gen = GenerateTrace(p, g.value(), across);
  ASSERT_FALSE(gen.ok());
  EXPECT_NE(gen.status().ToString().find("statement-convex"),
            std::string::npos)
      << gen.status().ToString();

  // Fused read-after-write of one array inside one trace.
  ir::Trace rw;
  rw.node_ids = {static_cast<uint32_t>(scatter_x),
                 static_cast<uint32_t>(gather_g)};
  std::sort(rw.node_ids.begin(), rw.node_ids.end());
  rw.inputs = {"v", "idx"};
  rw.outputs = {"g", "X"};
  EXPECT_GE(ir::StmtConvexityViolation(g.value(), rw.node_ids), 0);
  EXPECT_FALSE(GenerateTrace(p, g.value(), rw).ok());

  // The partitioner never emits a region spanning the scatter.
  ir::PartitionConstraints c;
  for (const auto& tr : ir::GreedyPartition(g.value(), c)) {
    EXPECT_LT(ir::StmtConvexityViolation(g.value(), tr.node_ids), 0);
  }
}


TEST(CodegenTest, BoundaryCondenseOverSelInputCompiles) {
  // condense over a selection-carrying BOUNDARY input (its producer stays
  // outside the trace): emission must resolve through the chunk-var slot,
  // not walk the graph edge out of the trace (which used to throw).
  using namespace dsl;
  Program p;
  p.data = {{"src", TypeId::kI64, false}};
  std::vector<StmtPtr> body;
  body.push_back(Let("v", Skeleton(SkeletonKind::kRead,
                                   {Var("i"), Var("src")})));
  body.push_back(Let(
      "a", Skeleton(SkeletonKind::kFilter,
                    {Lambda({"x"}, Call(ScalarOp::kGt,
                                        {Var("x"), ConstI(0)})),
                     Var("v")})));
  body.push_back(Let("b", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Var("a")})));
  body.push_back(Let("c", Skeleton(SkeletonKind::kCondense, {Var("b")})));
  body.push_back(Assign("i", Var("i") + Skeleton(SkeletonKind::kLen,
                                                 {Var("v")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(4096)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  ASSERT_TRUE(TypeCheck(&p).ok());
  auto g = ir::DepGraph::Build(p);
  ASSERT_TRUE(g.ok());
  int condense_c = -1;
  for (const auto& n : g.value().nodes()) {
    if (n.kind == dsl::SkeletonKind::kCondense) {
      condense_c = static_cast<int>(n.id);
    }
  }
  ASSERT_GE(condense_c, 0);
  ir::Trace tr;
  tr.node_ids = {static_cast<uint32_t>(condense_c)};
  tr.inputs = {"b"};
  tr.outputs = {"c"};
  CodegenOptions opts;
  opts.sel_inputs.insert("b");
  auto gen = GenerateTrace(p, g.value(), tr, opts);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  bool condensed_out = false;
  for (const auto& o : gen.value().outputs) {
    if (o.kind == TraceOutputSpec::Kind::kArrayVar && o.name == "c") {
      condensed_out = o.condensed;
    }
  }
  EXPECT_TRUE(condensed_out);
  // Without the selection specialization the same trace must DECLINE
  // (condense needs a selection context), not crash.
  auto gen_pos = GenerateTrace(p, g.value(), tr);
  EXPECT_FALSE(gen_pos.ok());
}


}  // namespace
}  // namespace avm::jit
