// Differential tests: programs executed with JIT-compiled traces injected
// must produce byte-identical results to pure vectorized interpretation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dsl/builder.h"
#include "util/rng.h"
#include "dsl/typecheck.h"
#include "interp/interpreter.h"
#include "jit/trace_compiler.h"

namespace avm::jit {
namespace {

using interp::DataBinding;
using interp::Interpreter;

struct CompiledFixture {
  dsl::Program program;
  ir::DepGraph graph;
  std::vector<CompiledTrace> compiled;
};

Result<CompiledFixture> Compile(dsl::Program program, bool allow_filter,
                                const CodegenOptions& cg = {}) {
  CompiledFixture fx;
  fx.program = std::move(program);
  AVM_RETURN_NOT_OK(dsl::TypeCheck(&fx.program));
  AVM_ASSIGN_OR_RETURN(fx.graph, ir::DepGraph::Build(fx.program));
  ir::PartitionConstraints c;
  c.allow_filter = allow_filter;
  auto traces = ir::GreedyPartition(fx.graph, c);
  for (const auto& t : traces) {
    auto compiled =
        CompileTrace(fx.program, fx.graph, t, SourceJit::Global(), cg);
    if (compiled.ok()) fx.compiled.push_back(std::move(compiled).value());
  }
  return fx;
}

TEST(JitExecTest, Figure2CompiledMatchesInterpreted) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 8192;
  std::vector<int64_t> data(kN);
  for (int64_t i = 0; i < kN; ++i) data[i] = (i % 7) - 3;

  auto run = [&](bool inject, std::vector<int64_t>* v,
                 std::vector<int64_t>* w) -> uint64_t {
    auto fx = Compile(dsl::MakeFigure2Program(kN), /*allow_filter=*/true);
    EXPECT_TRUE(fx.ok()) << fx.status().ToString();
    EXPECT_FALSE(fx.value().compiled.empty());
    Interpreter in(&fx.value().program);
    EXPECT_TRUE(in.BindData("some_data", DataBinding::Raw(TypeId::kI64,
                                                          data.data(), kN))
                    .ok());
    EXPECT_TRUE(in.BindData("v", DataBinding::Raw(TypeId::kI64, v->data(), kN,
                                                  true))
                    .ok());
    EXPECT_TRUE(in.BindData("w", DataBinding::Raw(TypeId::kI64, w->data(), kN,
                                                  true))
                    .ok());
    uint64_t runs = 0;
    if (inject) {
      for (const auto& ct : fx.value().compiled) {
        in.AddInjection(MakeInjection(ct, in.chunk_size()));
      }
    }
    EXPECT_TRUE(in.Run().ok());
    for (const auto& tr : in.injections()) runs += tr.invocations;
    return runs;
  };

  std::vector<int64_t> v1(kN, -1), w1(kN, -1), v2(kN, -1), w2(kN, -1);
  run(false, &v1, &w1);
  uint64_t injected_runs = run(true, &v2, &w2);
  EXPECT_GT(injected_runs, 0u);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(w1, w2);
}

TEST(JitExecTest, MapPipelineCompiled) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 5000;
  auto program = dsl::MakeMapPipeline(
      TypeId::kI64,
      dsl::Lambda({"x"}, (dsl::Var("x") * dsl::ConstI(3)) + dsl::ConstI(11)),
      kN);
  auto fx = Compile(std::move(program), false);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());

  std::vector<int64_t> data(kN), out(kN, 0);
  for (int64_t i = 0; i < kN; ++i) data[i] = i - 1234;
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(
      in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
  }
  ASSERT_TRUE(in.Run().ok());
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], data[i] * 3 + 11);
}

TEST(JitExecTest, HypotPipelineCompiledFloats) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 3000;
  auto fx = Compile(dsl::MakeHypotPipeline(kN), false);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());
  std::vector<double> a(kN), b(kN), out(kN);
  for (int i = 0; i < kN; ++i) {
    a[i] = i * 0.5;
    b[i] = (kN - i) * 0.25;
  }
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(
      in.BindData("a", DataBinding::Raw(TypeId::kF64, a.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("b", DataBinding::Raw(TypeId::kF64, b.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kF64, out.data(), kN, true))
          .ok());
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
  }
  ASSERT_TRUE(in.Run().ok());
  for (int i = 0; i < kN; ++i) {
    ASSERT_NEAR(out[i], std::sqrt(a[i] * a[i] + b[i] * b[i]), 1e-9);
  }
}

TEST(JitExecTest, FoldTraceSetsScalarBinding) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 4096;
  auto fx = Compile(dsl::MakeSumPipeline(TypeId::kI64, kN), false);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  std::vector<int64_t> data(kN);
  int64_t expect = 0;
  for (int64_t i = 0; i < kN; ++i) {
    data[i] = i * 7 - 5;
    expect += data[i];
  }
  int64_t out[1] = {0};
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(
      in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out, 1, true)).ok());
  uint64_t injected = 0;
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
    ++injected;
  }
  ASSERT_TRUE(in.Run().ok());
  EXPECT_EQ(out[0], expect);
  if (injected > 0) {
    uint64_t runs = 0;
    for (const auto& tr : in.injections()) runs += tr.invocations;
    EXPECT_GT(runs, 0u);
  }
}

TEST(JitExecTest, ForSpecializedTraceOnCompressedColumn) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const uint32_t kN = 65536;  // exactly one FOR block at default block size
  Column col(TypeId::kI64, kDefaultBlockSize);
  std::vector<int64_t> data(kN);
  Rng rng(55);
  for (auto& x : data) x = 1000 + static_cast<int64_t>(rng.NextBounded(512));
  ASSERT_TRUE(col.AppendValues(data.data(), kN).ok());
  ASSERT_EQ(col.block(0).scheme, Scheme::kFor);

  CodegenOptions cg;
  cg.scheme_specialization["src"] = Scheme::kFor;
  auto fx = Compile(
      dsl::MakeMapPipeline(TypeId::kI64,
                           dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(2)),
                           kN),
      false, cg);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());

  std::vector<int64_t> out(kN, 0);
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(in.BindData("src", DataBinding::FromColumn(&col)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
  }
  ASSERT_TRUE(in.Run().ok());
  for (uint32_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], data[i] * 2);
  uint64_t runs = 0;
  for (const auto& tr : in.injections()) runs += tr.invocations;
  EXPECT_GT(runs, 0u);
}

TEST(JitExecTest, SchemeMismatchFallsBackToInterpretation) {
  if (!SourceJit::Available()) GTEST_SKIP();
  // Column with a PLAIN block: the FOR-specialized trace must not run.
  const uint32_t kN = 4096;
  Column col(TypeId::kI64, kN);
  std::vector<int64_t> data(kN);
  Rng rng(66);
  for (auto& x : data) {
    x = static_cast<int64_t>(rng.Next());  // wide values: Plain
  }
  ASSERT_TRUE(
      col.AppendBlockWithScheme(Scheme::kPlain, data.data(), kN).ok());

  CodegenOptions cg;
  cg.scheme_specialization["src"] = Scheme::kFor;
  auto fx = Compile(
      dsl::MakeMapPipeline(TypeId::kI64,
                           dsl::Lambda({"x"}, dsl::Var("x") + dsl::ConstI(1)),
                           kN),
      false, cg);
  ASSERT_TRUE(fx.ok());
  std::vector<int64_t> out(kN, 0);
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(in.BindData("src", DataBinding::FromColumn(&col)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
  }
  ASSERT_TRUE(in.Run().ok());
  // Results still correct (interpreted), compiled trace never invoked.
  for (uint32_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], data[i] + 1);
  for (const auto& tr : in.injections()) {
    EXPECT_EQ(tr.invocations, 0u);
    EXPECT_GT(tr.fallbacks, 0u);
  }
}

TEST(JitExecTest, FilterPipelineCompiledWithCondense) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 6000;
  auto fx = Compile(
      dsl::MakeFilterPipeline(
          TypeId::kI64,
          dsl::Lambda({"x"}, dsl::Call(dsl::ScalarOp::kGt,
                                       {dsl::Var("x"), dsl::ConstI(50)})),
          kN),
      /*allow_filter=*/true);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());
  std::vector<int64_t> data(kN), out(kN, -7);
  for (int64_t i = 0; i < kN; ++i) data[i] = i % 100;
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(
      in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
  }
  ASSERT_TRUE(in.Run().ok());
  // Expected: all values > 50, in order.
  std::vector<int64_t> expect;
  for (int64_t i = 0; i < kN; ++i) {
    if (data[i] > 50) expect.push_back(data[i]);
  }
  auto k = in.GetScalar("k");
  ASSERT_TRUE(k.ok());
  ASSERT_EQ(k.value().AsI64(), static_cast<int64_t>(expect.size()));
  for (size_t i = 0; i < expect.size(); ++i) ASSERT_EQ(out[i], expect[i]);
  uint64_t runs = 0;
  for (const auto& tr : in.injections()) runs += tr.invocations;
  EXPECT_GT(runs, 0u);
}

// ---------------------------------------------------------------------------
// Trace-ABI shapes: gather/scatter, let-bound write counts, selection-in
// (docs/TRACE_ABI.md). These compile the exact fragments the JIT used to
// decline and hold them byte-equal to interpretation.
// ---------------------------------------------------------------------------

namespace abi {

using namespace dsl;

/// gather(base, clamp(idx)) -> write: the join-probe shape.
Program MakeGatherPipeline(int64_t limit, int64_t base_len,
                           bool clamp_indices) {
  Program p;
  p.data = {{"idx", TypeId::kI64, false},
            {"base", TypeId::kI64, false},
            {"out", TypeId::kI64, true}};
  ExprPtr index = Var("k");
  if (clamp_indices) {
    ExprPtr inb = Cast(TypeId::kI64, Var("k") >= ConstI(0)) *
                  Cast(TypeId::kI64, Var("k") < ConstI(base_len));
    index = std::move(inb) * Var("k");
  }
  std::vector<StmtPtr> body;
  body.push_back(Let("iv", Skeleton(SkeletonKind::kRead,
                                    {Var("i"), Var("idx")})));
  body.push_back(Let("ci", Skeleton(SkeletonKind::kMap,
                                    {Lambda({"k"}, std::move(index)),
                                     Var("iv")})));
  body.push_back(Let("g", Skeleton(SkeletonKind::kGather,
                                   {Var("base"), Var("ci")})));
  body.push_back(ExprStmt(Skeleton(SkeletonKind::kWrite,
                                   {Var("out"), Var("i"), Var("g")})));
  body.push_back(Assign("i", Var("i") + Skeleton(SkeletonKind::kLen,
                                                 {Var("iv")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(limit)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  return p;
}

/// scatter(acc, idx % groups, vals, +): the grouped-aggregation shape.
Program MakeScatterPipeline(int64_t limit, int64_t groups) {
  Program p;
  p.data = {{"src", TypeId::kI64, false}, {"acc", TypeId::kI64, true}};
  std::vector<StmtPtr> body;
  body.push_back(Let("v", Skeleton(SkeletonKind::kRead,
                                   {Var("i"), Var("src")})));
  ExprPtr grp = Call(ScalarOp::kMod,
                     {Call(ScalarOp::kAbs, {Var("x")}), ConstI(groups)});
  body.push_back(Let("g", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, std::move(grp)),
                                    Var("v")})));
  body.push_back(ExprStmt(Skeleton(
      SkeletonKind::kScatter,
      {Var("acc"), Var("g"), Var("v"),
       Lambda({"o", "n"}, Var("o") + Var("n"))})));
  body.push_back(Assign("i", Var("i") + Skeleton(SkeletonKind::kLen,
                                                 {Var("v")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(limit)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  return p;
}

/// filter -> map -> condensing write at a let-bound cursor: the ORDER
/// BY/condense hot loop (stale-cursor shape).
Program MakeCondensingCursorPipeline(int64_t limit) {
  Program p;
  p.data = {{"src", TypeId::kI64, false}, {"out", TypeId::kI64, true}};
  std::vector<StmtPtr> body;
  body.push_back(Let("v", Skeleton(SkeletonKind::kRead,
                                   {Var("i"), Var("src")})));
  body.push_back(Let(
      "t", Skeleton(SkeletonKind::kFilter,
                    {Lambda({"x"}, Call(ScalarOp::kGt,
                                        {Var("x"), ConstI(0)})),
                     Var("v")})));
  body.push_back(Let("y", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(5)),
                                    Var("t")})));
  body.push_back(Let("w", Skeleton(SkeletonKind::kWrite,
                                   {Var("out"), Var("onum"), Var("y")})));
  body.push_back(Assign("onum", Var("onum") + Var("w")));
  body.push_back(Assign("i", Var("i") + Skeleton(SkeletonKind::kLen,
                                                 {Var("v")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(limit)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), MutDef("onum"),
             Assign("onum", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  return p;
}

}  // namespace abi

TEST(JitExecTest, GatherTraceCompiledMatchesInterpreted) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 8192, kBase = 512;
  auto fx = Compile(abi::MakeGatherPipeline(kN, kBase, true), false);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());

  std::vector<int64_t> idx(kN), base(kBase);
  Rng rng(77);
  for (int64_t i = 0; i < kN; ++i) {
    idx[i] = rng.NextInRange(-50, kBase + 49);  // some out of domain
  }
  for (int64_t i = 0; i < kBase; ++i) base[i] = i * 3 + 1;

  auto run = [&](bool inject, std::vector<int64_t>* out) -> uint64_t {
    Interpreter in(&fx.value().program);
    EXPECT_TRUE(in.BindData("idx", DataBinding::Raw(TypeId::kI64, idx.data(),
                                                    kN)).ok());
    EXPECT_TRUE(in.BindData("base", DataBinding::Raw(TypeId::kI64,
                                                     base.data(), kBase))
                    .ok());
    EXPECT_TRUE(in.BindData("out", DataBinding::Raw(TypeId::kI64, out->data(),
                                                    kN, true))
                    .ok());
    if (inject) {
      for (const auto& ct : fx.value().compiled) {
        in.AddInjection(MakeInjection(ct, in.chunk_size()));
      }
    }
    EXPECT_TRUE(in.Run().ok());
    uint64_t runs = 0;
    for (const auto& tr : in.injections()) runs += tr.invocations;
    return runs;
  };
  std::vector<int64_t> o1(kN, -1), o2(kN, -1);
  run(false, &o1);
  EXPECT_GT(run(true, &o2), 0u);
  EXPECT_EQ(o1, o2);
}

TEST(JitExecTest, GatherFaultRaisesInterpreterIdenticalError) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 4096, kBase = 128;
  // UNclamped indices: both paths must fail with the SAME OutOfRange.
  auto fx = Compile(abi::MakeGatherPipeline(kN, kBase, false), false);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());

  std::vector<int64_t> idx(kN, 5);
  idx[700] = kBase + 9;  // first stray index
  std::vector<int64_t> base(kBase, 0), out(kN, 0);

  auto run = [&](bool inject) -> Status {
    Interpreter in(&fx.value().program);
    EXPECT_TRUE(in.BindData("idx", DataBinding::Raw(TypeId::kI64, idx.data(),
                                                    kN)).ok());
    EXPECT_TRUE(in.BindData("base", DataBinding::Raw(TypeId::kI64,
                                                     base.data(), kBase))
                    .ok());
    EXPECT_TRUE(in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(),
                                                    kN, true))
                    .ok());
    if (inject) {
      for (const auto& ct : fx.value().compiled) {
        in.AddInjection(MakeInjection(ct, in.chunk_size()));
      }
    }
    return in.Run();
  };
  Status interp = run(false);
  Status jit = run(true);
  ASSERT_FALSE(interp.ok());
  ASSERT_FALSE(jit.ok());
  EXPECT_EQ(jit.ToString(), interp.ToString());
}

TEST(JitExecTest, ScatterTraceCompiledMatchesInterpreted) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 8192, kGroups = 16;
  auto fx = Compile(abi::MakeScatterPipeline(kN, kGroups), false);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());

  std::vector<int64_t> data(kN);
  Rng rng(88);
  for (auto& x : data) x = rng.NextInRange(-999, 999);

  auto run = [&](bool inject, std::vector<int64_t>* acc) -> uint64_t {
    Interpreter in(&fx.value().program);
    EXPECT_TRUE(in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(),
                                                    kN)).ok());
    EXPECT_TRUE(in.BindData("acc", DataBinding::Raw(TypeId::kI64, acc->data(),
                                                    kGroups, true))
                    .ok());
    if (inject) {
      for (const auto& ct : fx.value().compiled) {
        in.AddInjection(MakeInjection(ct, in.chunk_size()));
      }
    }
    EXPECT_TRUE(in.Run().ok());
    uint64_t runs = 0;
    for (const auto& tr : in.injections()) runs += tr.invocations;
    return runs;
  };
  std::vector<int64_t> a1(kGroups, 0), a2(kGroups, 0);
  run(false, &a1);
  EXPECT_GT(run(true, &a2), 0u);
  EXPECT_EQ(a1, a2);
}

TEST(JitExecTest, LetBoundWriteCountPublishesCursorAdvance) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 8192;
  auto fx = Compile(abi::MakeCondensingCursorPipeline(kN),
                    /*allow_filter=*/true);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());

  std::vector<int64_t> data(kN);
  Rng rng(101);
  for (auto& x : data) x = rng.NextInRange(-300, 700);

  auto run = [&](bool inject, std::vector<int64_t>* out) -> uint64_t {
    Interpreter in(&fx.value().program);
    EXPECT_TRUE(in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(),
                                                    kN)).ok());
    EXPECT_TRUE(in.BindData("out", DataBinding::Raw(TypeId::kI64, out->data(),
                                                    kN, true))
                    .ok());
    if (inject) {
      for (const auto& ct : fx.value().compiled) {
        in.AddInjection(MakeInjection(ct, in.chunk_size()));
      }
    }
    EXPECT_TRUE(in.Run().ok());
    uint64_t runs = 0;
    for (const auto& tr : in.injections()) runs += tr.invocations;
    return runs;
  };
  std::vector<int64_t> o1(kN, -1), o2(kN, -1);
  run(false, &o1);
  // A stale cursor would shear the condensed output: every chunk after the
  // first would overwrite the previous chunk's rows.
  EXPECT_GT(run(true, &o2), 0u);
  EXPECT_EQ(o1, o2);
}


TEST(JitExecTest, FilterDependentScatterTraceCompiles) {
  // A scatter consuming the filtered value: the generated code must
  // declare/advance the guard-survivor counter `cnt` even though no
  // condensed buffer output exists (out_counts/scalars report it).
  if (!SourceJit::Available()) GTEST_SKIP();
  using namespace dsl;
  const int64_t kN = 8192, kGroups = 8;
  Program p;
  p.data = {{"src", TypeId::kI64, false}, {"acc", TypeId::kI64, true}};
  std::vector<StmtPtr> body;
  body.push_back(Let("v", Skeleton(SkeletonKind::kRead,
                                   {Var("i"), Var("src")})));
  body.push_back(Let(
      "t", Skeleton(SkeletonKind::kFilter,
                    {Lambda({"x"}, Call(ScalarOp::kGt,
                                        {Var("x"), ConstI(0)})),
                     Var("v")})));
  body.push_back(Let("g", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Call(ScalarOp::kMod,
                                                       {Var("x"),
                                                        ConstI(kGroups)})),
                                    Var("t")})));
  body.push_back(ExprStmt(Skeleton(
      SkeletonKind::kScatter,
      {Var("acc"), Var("g"), Var("t"),
       Lambda({"o", "n"}, Var("o") + Var("n"))})));
  body.push_back(Assign("i", Var("i") + Skeleton(SkeletonKind::kLen,
                                                 {Var("v")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(kN)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();

  auto fx = Compile(std::move(p), /*allow_filter=*/true);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());

  std::vector<int64_t> data(kN);
  Rng rng(202);
  for (auto& x : data) x = rng.NextInRange(-500, 500);

  auto run = [&](bool inject, std::vector<int64_t>* acc) -> uint64_t {
    Interpreter in(&fx.value().program);
    EXPECT_TRUE(in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(),
                                                    kN)).ok());
    EXPECT_TRUE(in.BindData("acc", DataBinding::Raw(TypeId::kI64, acc->data(),
                                                    kGroups, true))
                    .ok());
    if (inject) {
      for (const auto& ct : fx.value().compiled) {
        in.AddInjection(MakeInjection(ct, in.chunk_size()));
      }
    }
    EXPECT_TRUE(in.Run().ok());
    uint64_t runs = 0;
    for (const auto& tr : in.injections()) runs += tr.invocations;
    return runs;
  };
  std::vector<int64_t> a1(kGroups, 0), a2(kGroups, 0);
  run(false, &a1);
  EXPECT_GT(run(true, &a2), 0u);
  EXPECT_EQ(a1, a2);
}

TEST(JitExecTest, SelWriteBypassingInTraceFilterDeclined) {
  // Selection-specialized trace containing a filter AND a write of a
  // selection-carrying value that does not flow through that filter:
  // condensed stores would share the guard and drop filter-rejected rows,
  // so the shape must DECLINE (stay interpreted), not compile.
  using namespace dsl;
  Program p;
  p.data = {{"src", TypeId::kI64, false}, {"dst", TypeId::kI64, true}};
  std::vector<StmtPtr> body;
  body.push_back(Let("v", Skeleton(SkeletonKind::kRead,
                                   {Var("i"), Var("src")})));
  body.push_back(Let(
      "a", Skeleton(SkeletonKind::kFilter,
                    {Lambda({"x"}, Call(ScalarOp::kGt,
                                        {Var("x"), ConstI(0)})),
                     Var("v")})));
  body.push_back(Let("b", Skeleton(SkeletonKind::kMap,
                                   {Lambda({"x"}, Var("x") * ConstI(2)),
                                    Var("a")})));
  // In-trace filter over the sel-carrying b, plus a write of b itself.
  body.push_back(Let(
      "c", Skeleton(SkeletonKind::kFilter,
                    {Lambda({"x"}, Call(ScalarOp::kLt,
                                        {Var("x"), ConstI(100)})),
                     Var("b")})));
  body.push_back(Let("d", Skeleton(SkeletonKind::kCondense, {Var("c")})));
  body.push_back(Let("w", Skeleton(SkeletonKind::kWrite,
                                   {Var("dst"), Var("onum"), Var("b")})));
  body.push_back(Assign("onum", Var("onum") + Var("w")));
  body.push_back(Assign("i", Var("i") + Skeleton(SkeletonKind::kLen,
                                                 {Var("v")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(4096)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), MutDef("onum"),
             Assign("onum", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  ASSERT_TRUE(dsl::TypeCheck(&p).ok());
  auto g = ir::DepGraph::Build(p);
  ASSERT_TRUE(g.ok());
  int filter_c = -1, write_w = -1, condense_d = -1;
  for (const auto& n : g.value().nodes()) {
    if (n.kind == dsl::SkeletonKind::kFilter) filter_c = std::max(filter_c, static_cast<int>(n.id));
    if (n.kind == dsl::SkeletonKind::kWrite) write_w = static_cast<int>(n.id);
    if (n.kind == dsl::SkeletonKind::kCondense) condense_d = static_cast<int>(n.id);
  }
  ASSERT_GE(filter_c, 0);
  ASSERT_GE(write_w, 0);
  ASSERT_GE(condense_d, 0);
  ir::Trace tr;
  tr.node_ids = {static_cast<uint32_t>(filter_c),
                 static_cast<uint32_t>(condense_d),
                 static_cast<uint32_t>(write_w)};
  std::sort(tr.node_ids.begin(), tr.node_ids.end());
  tr.inputs = {"b"};
  tr.outputs = {"d", "dst"};
  CodegenOptions opts;
  opts.sel_inputs.insert("b");
  auto gen = GenerateTrace(p, g.value(), tr, opts);
  ASSERT_FALSE(gen.ok());
  EXPECT_NE(gen.status().ToString().find("bypasses"), std::string::npos)
      << gen.status().ToString();
}


}  // namespace
}  // namespace avm::jit
