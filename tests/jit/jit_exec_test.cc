// Differential tests: programs executed with JIT-compiled traces injected
// must produce byte-identical results to pure vectorized interpretation.
#include <gtest/gtest.h>

#include <cmath>

#include "dsl/builder.h"
#include "util/rng.h"
#include "dsl/typecheck.h"
#include "interp/interpreter.h"
#include "jit/trace_compiler.h"

namespace avm::jit {
namespace {

using interp::DataBinding;
using interp::Interpreter;

struct CompiledFixture {
  dsl::Program program;
  ir::DepGraph graph;
  std::vector<CompiledTrace> compiled;
};

Result<CompiledFixture> Compile(dsl::Program program, bool allow_filter,
                                const CodegenOptions& cg = {}) {
  CompiledFixture fx;
  fx.program = std::move(program);
  AVM_RETURN_NOT_OK(dsl::TypeCheck(&fx.program));
  AVM_ASSIGN_OR_RETURN(fx.graph, ir::DepGraph::Build(fx.program));
  ir::PartitionConstraints c;
  c.allow_filter = allow_filter;
  auto traces = ir::GreedyPartition(fx.graph, c);
  for (const auto& t : traces) {
    auto compiled =
        CompileTrace(fx.program, fx.graph, t, SourceJit::Global(), cg);
    if (compiled.ok()) fx.compiled.push_back(std::move(compiled).value());
  }
  return fx;
}

TEST(JitExecTest, Figure2CompiledMatchesInterpreted) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 8192;
  std::vector<int64_t> data(kN);
  for (int64_t i = 0; i < kN; ++i) data[i] = (i % 7) - 3;

  auto run = [&](bool inject, std::vector<int64_t>* v,
                 std::vector<int64_t>* w) -> uint64_t {
    auto fx = Compile(dsl::MakeFigure2Program(kN), /*allow_filter=*/true);
    EXPECT_TRUE(fx.ok()) << fx.status().ToString();
    EXPECT_FALSE(fx.value().compiled.empty());
    Interpreter in(&fx.value().program);
    EXPECT_TRUE(in.BindData("some_data", DataBinding::Raw(TypeId::kI64,
                                                          data.data(), kN))
                    .ok());
    EXPECT_TRUE(in.BindData("v", DataBinding::Raw(TypeId::kI64, v->data(), kN,
                                                  true))
                    .ok());
    EXPECT_TRUE(in.BindData("w", DataBinding::Raw(TypeId::kI64, w->data(), kN,
                                                  true))
                    .ok());
    uint64_t runs = 0;
    if (inject) {
      for (const auto& ct : fx.value().compiled) {
        in.AddInjection(MakeInjection(ct, in.chunk_size()));
      }
    }
    EXPECT_TRUE(in.Run().ok());
    for (const auto& tr : in.injections()) runs += tr.invocations;
    return runs;
  };

  std::vector<int64_t> v1(kN, -1), w1(kN, -1), v2(kN, -1), w2(kN, -1);
  run(false, &v1, &w1);
  uint64_t injected_runs = run(true, &v2, &w2);
  EXPECT_GT(injected_runs, 0u);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(w1, w2);
}

TEST(JitExecTest, MapPipelineCompiled) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 5000;
  auto program = dsl::MakeMapPipeline(
      TypeId::kI64,
      dsl::Lambda({"x"}, (dsl::Var("x") * dsl::ConstI(3)) + dsl::ConstI(11)),
      kN);
  auto fx = Compile(std::move(program), false);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());

  std::vector<int64_t> data(kN), out(kN, 0);
  for (int64_t i = 0; i < kN; ++i) data[i] = i - 1234;
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(
      in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
  }
  ASSERT_TRUE(in.Run().ok());
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], data[i] * 3 + 11);
}

TEST(JitExecTest, HypotPipelineCompiledFloats) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 3000;
  auto fx = Compile(dsl::MakeHypotPipeline(kN), false);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());
  std::vector<double> a(kN), b(kN), out(kN);
  for (int i = 0; i < kN; ++i) {
    a[i] = i * 0.5;
    b[i] = (kN - i) * 0.25;
  }
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(
      in.BindData("a", DataBinding::Raw(TypeId::kF64, a.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("b", DataBinding::Raw(TypeId::kF64, b.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kF64, out.data(), kN, true))
          .ok());
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
  }
  ASSERT_TRUE(in.Run().ok());
  for (int i = 0; i < kN; ++i) {
    ASSERT_NEAR(out[i], std::sqrt(a[i] * a[i] + b[i] * b[i]), 1e-9);
  }
}

TEST(JitExecTest, FoldTraceSetsScalarBinding) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 4096;
  auto fx = Compile(dsl::MakeSumPipeline(TypeId::kI64, kN), false);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  std::vector<int64_t> data(kN);
  int64_t expect = 0;
  for (int64_t i = 0; i < kN; ++i) {
    data[i] = i * 7 - 5;
    expect += data[i];
  }
  int64_t out[1] = {0};
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(
      in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out, 1, true)).ok());
  uint64_t injected = 0;
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
    ++injected;
  }
  ASSERT_TRUE(in.Run().ok());
  EXPECT_EQ(out[0], expect);
  if (injected > 0) {
    uint64_t runs = 0;
    for (const auto& tr : in.injections()) runs += tr.invocations;
    EXPECT_GT(runs, 0u);
  }
}

TEST(JitExecTest, ForSpecializedTraceOnCompressedColumn) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const uint32_t kN = 65536;  // exactly one FOR block at default block size
  Column col(TypeId::kI64, kDefaultBlockSize);
  std::vector<int64_t> data(kN);
  Rng rng(55);
  for (auto& x : data) x = 1000 + static_cast<int64_t>(rng.NextBounded(512));
  ASSERT_TRUE(col.AppendValues(data.data(), kN).ok());
  ASSERT_EQ(col.block(0).scheme, Scheme::kFor);

  CodegenOptions cg;
  cg.scheme_specialization["src"] = Scheme::kFor;
  auto fx = Compile(
      dsl::MakeMapPipeline(TypeId::kI64,
                           dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(2)),
                           kN),
      false, cg);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());

  std::vector<int64_t> out(kN, 0);
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(in.BindData("src", DataBinding::FromColumn(&col)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
  }
  ASSERT_TRUE(in.Run().ok());
  for (uint32_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], data[i] * 2);
  uint64_t runs = 0;
  for (const auto& tr : in.injections()) runs += tr.invocations;
  EXPECT_GT(runs, 0u);
}

TEST(JitExecTest, SchemeMismatchFallsBackToInterpretation) {
  if (!SourceJit::Available()) GTEST_SKIP();
  // Column with a PLAIN block: the FOR-specialized trace must not run.
  const uint32_t kN = 4096;
  Column col(TypeId::kI64, kN);
  std::vector<int64_t> data(kN);
  Rng rng(66);
  for (auto& x : data) {
    x = static_cast<int64_t>(rng.Next());  // wide values: Plain
  }
  ASSERT_TRUE(
      col.AppendBlockWithScheme(Scheme::kPlain, data.data(), kN).ok());

  CodegenOptions cg;
  cg.scheme_specialization["src"] = Scheme::kFor;
  auto fx = Compile(
      dsl::MakeMapPipeline(TypeId::kI64,
                           dsl::Lambda({"x"}, dsl::Var("x") + dsl::ConstI(1)),
                           kN),
      false, cg);
  ASSERT_TRUE(fx.ok());
  std::vector<int64_t> out(kN, 0);
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(in.BindData("src", DataBinding::FromColumn(&col)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
  }
  ASSERT_TRUE(in.Run().ok());
  // Results still correct (interpreted), compiled trace never invoked.
  for (uint32_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], data[i] + 1);
  for (const auto& tr : in.injections()) {
    EXPECT_EQ(tr.invocations, 0u);
    EXPECT_GT(tr.fallbacks, 0u);
  }
}

TEST(JitExecTest, FilterPipelineCompiledWithCondense) {
  if (!SourceJit::Available()) GTEST_SKIP();
  const int64_t kN = 6000;
  auto fx = Compile(
      dsl::MakeFilterPipeline(
          TypeId::kI64,
          dsl::Lambda({"x"}, dsl::Call(dsl::ScalarOp::kGt,
                                       {dsl::Var("x"), dsl::ConstI(50)})),
          kN),
      /*allow_filter=*/true);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  ASSERT_FALSE(fx.value().compiled.empty());
  std::vector<int64_t> data(kN), out(kN, -7);
  for (int64_t i = 0; i < kN; ++i) data[i] = i % 100;
  Interpreter in(&fx.value().program);
  ASSERT_TRUE(
      in.BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kN)).ok());
  ASSERT_TRUE(
      in.BindData("out", DataBinding::Raw(TypeId::kI64, out.data(), kN, true))
          .ok());
  for (const auto& ct : fx.value().compiled) {
    in.AddInjection(MakeInjection(ct, in.chunk_size()));
  }
  ASSERT_TRUE(in.Run().ok());
  // Expected: all values > 50, in order.
  std::vector<int64_t> expect;
  for (int64_t i = 0; i < kN; ++i) {
    if (data[i] > 50) expect.push_back(data[i]);
  }
  auto k = in.GetScalar("k");
  ASSERT_TRUE(k.ok());
  ASSERT_EQ(k.value().AsI64(), static_cast<int64_t>(expect.size()));
  for (size_t i = 0; i < expect.size(); ++i) ASSERT_EQ(out[i], expect[i]);
  uint64_t runs = 0;
  for (const auto& tr : in.injections()) runs += tr.invocations;
  EXPECT_GT(runs, 0u);
}

}  // namespace
}  // namespace avm::jit
