// Unit tests for the persistent on-disk trace cache: roundtrip, version
// keying, corruption handling, LRU eviction, and instance sharing.
#include "jit/disk_cache.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace avm::jit {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/avm_disk_cache_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "";
}

JitArtifact MakeArtifact(JitTier tier, size_t len, uint8_t seed) {
  JitArtifact a;
  a.tier = tier;
  a.bytes.resize(len);
  for (size_t i = 0; i < len; ++i) {
    a.bytes[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return a;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

TEST(DiskCacheTest, StoreLoadRoundtrip) {
  DiskTraceCache cache(MakeTempDir(), 64 << 20);
  JitArtifact art = MakeArtifact(JitTier::kOptimized, 4096, 7);
  ASSERT_TRUE(cache.Store(/*situation_key=*/11, /*source_hash=*/42,
                          /*version_hash=*/5, art)
                  .ok());
  auto loaded = cache.TryLoad(11, 42, JitTier::kOptimized, 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().bytes, art.bytes);
  EXPECT_EQ(loaded.value().tier, JitTier::kOptimized);
  DiskCacheStats stats = cache.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(DiskCacheTest, MissOnUnknownSituation) {
  DiskTraceCache cache(MakeTempDir(), 64 << 20);
  auto loaded = cache.TryLoad(999, 42, JitTier::kFast, 5);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DiskCacheTest, VersionMismatchSilentlyMisses) {
  // A different compiler/flags/ABI revision hashes to a different filename:
  // the stale artifact must never load, and it is a miss — not corruption.
  DiskTraceCache cache(MakeTempDir(), 64 << 20);
  ASSERT_TRUE(cache.Store(11, 42, /*version_hash=*/5,
                          MakeArtifact(JitTier::kFast, 512, 1))
                  .ok());
  auto loaded = cache.TryLoad(11, 42, JitTier::kFast, /*version_hash=*/6);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().corrupt_dropped, 0u);
}

TEST(DiskCacheTest, SourceHashMismatchInvalidates) {
  // Same situation key but different generated source (e.g. a codegen
  // change that the version hash missed): the entry is stale, removed, and
  // reported as a miss so the caller recompiles.
  DiskTraceCache cache(MakeTempDir(), 64 << 20);
  ASSERT_TRUE(
      cache.Store(11, /*source_hash=*/42, 5, MakeArtifact(JitTier::kFast, 512, 2))
          .ok());
  auto loaded = cache.TryLoad(11, /*source_hash=*/43, JitTier::kFast, 5);
  EXPECT_FALSE(loaded.ok());
  EXPECT_FALSE(FileExists(cache.EntryPath(11, JitTier::kFast, 5)));
}

TEST(DiskCacheTest, CorruptEntryDroppedAndDeleted) {
  DiskTraceCache cache(MakeTempDir(), 64 << 20);
  ASSERT_TRUE(
      cache.Store(11, 42, 5, MakeArtifact(JitTier::kOptimized, 2048, 3)).ok());
  const std::string path = cache.EntryPath(11, JitTier::kOptimized, 5);
  ASSERT_TRUE(FileExists(path));

  // Flip one payload byte: the checksum must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 100, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 100, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  uint64_t corrupt_dropped = 0;
  auto loaded = cache.LoadBest(
      11, 42, {{JitTier::kOptimized, 5}}, &corrupt_dropped);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
  EXPECT_EQ(corrupt_dropped, 1u);
  EXPECT_EQ(cache.stats().corrupt_dropped, 1u);
  // The poisoned file is gone: the recompiled artifact can be re-stored.
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(
      cache.Store(11, 42, 5, MakeArtifact(JitTier::kOptimized, 2048, 3)).ok());
  EXPECT_TRUE(cache.TryLoad(11, 42, JitTier::kOptimized, 5).ok());
}

TEST(DiskCacheTest, TruncatedEntryDropped) {
  DiskTraceCache cache(MakeTempDir(), 64 << 20);
  ASSERT_TRUE(
      cache.Store(11, 42, 5, MakeArtifact(JitTier::kFast, 2048, 4)).ok());
  const std::string path = cache.EntryPath(11, JitTier::kFast, 5);
  ASSERT_EQ(::truncate(path.c_str(), 300), 0);
  auto loaded = cache.TryLoad(11, 42, JitTier::kFast, 5);
  EXPECT_FALSE(loaded.ok());
  EXPECT_GE(cache.stats().corrupt_dropped, 1u);
  EXPECT_FALSE(FileExists(path));
}

TEST(DiskCacheTest, LoadBestHonorsCandidateOrder) {
  DiskTraceCache cache(MakeTempDir(), 64 << 20);
  ASSERT_TRUE(
      cache.Store(11, 42, 5, MakeArtifact(JitTier::kFast, 512, 5)).ok());
  ASSERT_TRUE(
      cache.Store(11, 42, 6, MakeArtifact(JitTier::kOptimized, 512, 6)).ok());

  // Both flavors exist: the caller prefers optimized.
  auto best = cache.LoadBest(
      11, 42, {{JitTier::kOptimized, 6}, {JitTier::kFast, 5}});
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_EQ(best.value().tier, JitTier::kOptimized);
  // One logical lookup, one hit — not one per flavor probed.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);

  // Only the fast flavor survives: LoadBest falls through to it.
  ASSERT_EQ(::remove(cache.EntryPath(11, JitTier::kOptimized, 6).c_str()), 0);
  best = cache.LoadBest(11, 42,
                        {{JitTier::kOptimized, 6}, {JitTier::kFast, 5}});
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_EQ(best.value().tier, JitTier::kFast);
}

TEST(DiskCacheTest, EvictsLeastRecentlyUsedOverBudget) {
  // Budget fits roughly two entries; storing four must evict the oldest.
  const size_t kPayload = 8192;
  DiskTraceCache cache(MakeTempDir(), 2 * (kPayload + 256));
  for (uint64_t sit = 1; sit <= 4; ++sit) {
    ASSERT_TRUE(
        cache.Store(sit, 42, 5, MakeArtifact(JitTier::kFast, kPayload, 9)).ok());
  }
  EXPECT_GE(cache.stats().evictions, 2u);
  // The newest entry always survives its own store's eviction pass.
  EXPECT_TRUE(FileExists(cache.EntryPath(4, JitTier::kFast, 5)));
  // At least one of the older entries is gone.
  int survivors = 0;
  for (uint64_t sit = 1; sit <= 4; ++sit) {
    if (FileExists(cache.EntryPath(sit, JitTier::kFast, 5))) ++survivors;
  }
  EXPECT_LE(survivors, 2);
}

TEST(DiskCacheTest, ForDirSharesOneInstancePerDirectory) {
  const std::string dir = MakeTempDir();
  auto a = DiskTraceCache::ForDir(dir, 64 << 20);
  auto b = DiskTraceCache::ForDir(dir, 1 << 20);  // budget fixed by first call
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(b->budget_bytes(), static_cast<uint64_t>(64 << 20));
  auto c = DiskTraceCache::ForDir(MakeTempDir(), 64 << 20);
  EXPECT_NE(a.get(), c.get());
}

TEST(DiskCacheTest, TwoInstancesShareOneDirectory) {
  // Two processes pointed at one directory are modeled by two independent
  // instances: writes publish atomically, reads verify checksums, so each
  // side always sees either nothing or a complete entry.
  const std::string dir = MakeTempDir();
  DiskTraceCache a(dir, 64 << 20);
  DiskTraceCache b(dir, 64 << 20);
  JitArtifact art = MakeArtifact(JitTier::kOptimized, 1024, 12);
  ASSERT_TRUE(a.Store(21, 42, 5, art).ok());
  auto loaded = b.TryLoad(21, 42, JitTier::kOptimized, 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().bytes, art.bytes);
}

}  // namespace
}  // namespace avm::jit
