#include <gtest/gtest.h>

#include "util/cpu_info.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace avm {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%05d", 3), "00003");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(StrFormatTest, EmptyAndLong) {
  EXPECT_EQ(StrFormat("%s", ""), "");
  std::string big(5000, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 5000u);
}

TEST(StrJoinTest, Joins) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("cast_i16", "cast_"));
  EXPECT_FALSE(StartsWith("cas", "cast_"));
}

TEST(HashTest, IntegerAvalanche) {
  // Nearby keys must hash far apart.
  EXPECT_NE(HashInt64(1), HashInt64(2));
  EXPECT_NE(HashInt64(1) >> 32, HashInt64(2) >> 32);
}

TEST(HashTest, BytesAndStrings) {
  EXPECT_EQ(HashString("abc"), HashBytes("abc", 3));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(CpuInfoTest, HostProbeSane) {
  const CpuInfo& info = CpuInfo::Host();
  EXPECT_GE(info.num_cores, 1u);
  EXPECT_GE(info.l1_data_bytes, 4096u);
  EXPECT_GE(info.MaxFusedStreams(), 4u);
}

TEST(TimerTest, StopwatchAdvances) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GT(sw.ElapsedNanos(), 0u);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, CycleCounterMonotonicish) {
  uint64_t a = ReadCycleCounter();
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  uint64_t b = ReadCycleCounter();
  EXPECT_GT(b, a);
}

TEST(LoggingTest, LevelGating) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  AVM_LOG(kDebug) << "should be suppressed";
  SetLogLevel(old);
}

}  // namespace
}  // namespace avm
