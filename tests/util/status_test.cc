#include "util/status.h"

#include <gtest/gtest.h>

namespace avm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad thing");
}

TEST(StatusTest, EveryFactoryProducesMatchingCode) {
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::CompilationError("x").IsCompilationError());
  EXPECT_TRUE(Status::RuntimeError("x").IsRuntimeError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::RuntimeError("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsRuntimeError());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCompilationError),
               "Compilation error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

namespace helpers {
Status Fails() { return Status::OutOfRange("deep"); }
Status Propagates() {
  AVM_RETURN_NOT_OK(Fails());
  return Status::OK();
}
Result<int> ProducesValue() { return 5; }
Result<int> UsesAssign() {
  AVM_ASSIGN_OR_RETURN(int v, ProducesValue());
  return v * 2;
}
Result<int> PropagatesFromResult() {
  AVM_ASSIGN_OR_RETURN(int v, Result<int>(Status::TypeError("t")));
  return v;
}
}  // namespace helpers

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(helpers::Propagates().IsOutOfRange());
}

TEST(StatusMacrosTest, AssignOrReturnBindsValue) {
  auto r = helpers::UsesAssign();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 10);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  EXPECT_TRUE(helpers::PropagatesFromResult().status().IsTypeError());
}

}  // namespace
}  // namespace avm
