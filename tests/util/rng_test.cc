#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace avm {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng r(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 100000; ++i) {
    int64_t v = r.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(5);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double v = r.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng r(6);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(ZipfTest, SkewConcentratesOnSmallValues) {
  ZipfGenerator zipf(1000, 0.9, 42);
  std::map<uint64_t, int> histo;
  for (int i = 0; i < 100000; ++i) ++histo[zipf.Next()];
  // Rank 0 must dominate rank 100 by a wide margin under theta=0.9.
  EXPECT_GT(histo[0], 20 * std::max(1, histo[100]));
}

TEST(ZipfTest, ValuesInDomain) {
  ZipfGenerator zipf(50, 0.5, 1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(), 50u);
}

}  // namespace
}  // namespace avm
