#include "util/bits.h"

#include <gtest/gtest.h>

namespace avm::bits {
namespace {

TEST(BitsTest, BitWidth) {
  EXPECT_EQ(BitWidth(0), 0u);
  EXPECT_EQ(BitWidth(1), 1u);
  EXPECT_EQ(BitWidth(2), 2u);
  EXPECT_EQ(BitWidth(3), 2u);
  EXPECT_EQ(BitWidth(255), 8u);
  EXPECT_EQ(BitWidth(256), 9u);
  EXPECT_EQ(BitWidth(~uint64_t{0}), 64u);
}

TEST(BitsTest, RoundUpPow2) {
  EXPECT_EQ(RoundUpPow2(0, 8), 0u);
  EXPECT_EQ(RoundUpPow2(1, 8), 8u);
  EXPECT_EQ(RoundUpPow2(8, 8), 8u);
  EXPECT_EQ(RoundUpPow2(9, 8), 16u);
}

TEST(BitsTest, RoundUpGeneral) {
  EXPECT_EQ(RoundUp(10, 3), 12u);
  EXPECT_EQ(RoundUp(9, 3), 9u);
}

TEST(BitsTest, IsPow2) {
  EXPECT_FALSE(IsPow2(0));
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(63));
}

TEST(BitsTest, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(64), 64u);
  EXPECT_EQ(NextPow2(65), 128u);
}

TEST(BitsTest, BitmapSetGetClear) {
  uint64_t bm[2] = {0, 0};
  SetBit(bm, 3);
  SetBit(bm, 64);
  SetBit(bm, 127);
  EXPECT_TRUE(GetBit(bm, 3));
  EXPECT_TRUE(GetBit(bm, 64));
  EXPECT_TRUE(GetBit(bm, 127));
  EXPECT_FALSE(GetBit(bm, 4));
  ClearBit(bm, 64);
  EXPECT_FALSE(GetBit(bm, 64));
}

TEST(BitsTest, CountSetBits) {
  uint64_t bm[2] = {0, 0};
  for (uint64_t i = 0; i < 100; i += 3) SetBit(bm, i);
  EXPECT_EQ(CountSetBits(bm, 128), 34u);
  // Partial count stops at n bits.
  EXPECT_EQ(CountSetBits(bm, 10), 4u);  // bits 0,3,6,9
}

TEST(BitsTest, BitmapWords) {
  EXPECT_EQ(BitmapWords(0), 0u);
  EXPECT_EQ(BitmapWords(1), 1u);
  EXPECT_EQ(BitmapWords(64), 1u);
  EXPECT_EQ(BitmapWords(65), 2u);
}

}  // namespace
}  // namespace avm::bits
