#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstring>

namespace avm {
namespace {

TEST(ArenaTest, AllocatesAligned) {
  Arena arena;
  for (size_t align : {8, 16, 64, 256}) {
    void* p = arena.Allocate(10, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
  }
}

TEST(ArenaTest, GrowsAcrossBlocks) {
  Arena arena(128);
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(100);
    std::memset(p, i, 100);  // must be writable, distinct
    ptrs.push_back(p);
  }
  EXPECT_GT(arena.num_blocks(), 1u);
  EXPECT_GE(arena.total_allocated(), 100u * 100u);
  // Spot-check that earlier allocations were not clobbered.
  EXPECT_EQ(static_cast<uint8_t*>(ptrs[0])[0], 0);
  EXPECT_EQ(static_cast<uint8_t*>(ptrs[50])[99], 50);
}

TEST(ArenaTest, NewConstructsObject) {
  Arena arena;
  struct Pt {
    int x, y;
  };
  Pt* p = arena.New<Pt>(Pt{1, 2});
  EXPECT_EQ(p->x, 1);
  EXPECT_EQ(p->y, 2);
}

TEST(ArenaTest, AllocateArray) {
  Arena arena;
  int64_t* a = arena.AllocateArray<int64_t>(1000);
  for (int i = 0; i < 1000; ++i) a[i] = i;
  EXPECT_EQ(a[999], 999);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(int64_t), 0u);
}

TEST(ArenaTest, ResetReleasesEverything) {
  Arena arena(64);
  arena.Allocate(1000);
  arena.Reset();
  EXPECT_EQ(arena.num_blocks(), 0u);
  EXPECT_EQ(arena.total_allocated(), 0u);
  void* p = arena.Allocate(8);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaTest, LargeSingleAllocation) {
  Arena arena(64);
  void* p = arena.Allocate(1 << 20);
  EXPECT_NE(p, nullptr);
  std::memset(p, 0xab, 1 << 20);
}

}  // namespace
}  // namespace avm
