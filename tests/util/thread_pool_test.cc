#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

namespace avm {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] {});
  f.get();
}

TEST(ThreadPoolTest, GlobalSingleton) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(ThreadPoolStressTest, ManySubmittersManyTasks) {
  // Morsel execution submits from the caller while workers drain; hammer
  // the queue from several producer threads at once.
  ThreadPool pool(8);
  constexpr int kProducers = 6;
  constexpr int kTasksPerProducer = 2000;
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> producers;
  std::vector<std::future<void>> futs[kProducers];
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futs[p].push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& fs : futs) {
    for (auto& f : fs) f.get();
  }
  const int64_t per_producer =
      int64_t{kTasksPerProducer} * (kTasksPerProducer - 1) / 2;
  EXPECT_EQ(sum.load(), kProducers * per_producer);
}

TEST(ThreadPoolStressTest, RepeatedParallelForBursts) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> total{0};
    pool.ParallelFor(997, [&](size_t i) { total.fetch_add(i + 1); });
    ASSERT_EQ(total.load(), uint64_t{997} * 998 / 2) << "round " << round;
  }
}

}  // namespace
}  // namespace avm
