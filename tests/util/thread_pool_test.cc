#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace avm {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] {});
  f.get();
}

TEST(ThreadPoolTest, GlobalSingleton) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

}  // namespace
}  // namespace avm
