// The persistent trace cache's headline guarantee, measured end to end: a
// fresh engine pointed at a populated AVM_TRACE_CACHE_DIR answers its first
// query with ZERO backend compilations (disk hits instead), byte-identical
// to the cold run. Plus the robustness half: corrupt entries recompile, two
// engines can share one directory, and hot traces upgrade tiers.
//
// "Process restart" is modeled as a fresh ExecEngine with a fresh
// DiskTraceCache instance: a new in-memory TraceCache and new cache state,
// with only the directory surviving — exactly what a restarted server sees.
// (The CI warm job additionally runs the whole suite twice across real
// processes against one shared directory.)
#include <dirent.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dsl/builder.h"
#include "engine/exec_engine.h"
#include "jit/disk_cache.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"

namespace avm::engine {
namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/avm_warm_restart_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "";
}

/// A single-map pipeline partitions into exactly one trace with a stable
/// situation fingerprint, so the cold run's entry is exactly what the warm
/// run looks up.
ExecContext::ProgramFactory MapFactory() {
  return [](int64_t rows) -> Result<dsl::Program> {
    return dsl::MakeMapPipeline(
        TypeId::kI64,
        dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(7) - dsl::ConstI(3)),
        rows);
  };
}

std::vector<std::string> CacheEntries(const std::string& dir) {
  std::vector<std::string> entries;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return entries;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 6 && name.rfind(".avmtc") == name.size() - 6) {
      entries.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  return entries;
}

struct RunOutput {
  ExecReport report;
  std::vector<int64_t> out;
};

/// One "process lifetime": a fresh engine and a fresh disk-cache instance
/// over `dir`, running the map query once.
Result<RunOutput> RunOnce(const std::string& dir, jit::TierPolicy policy,
                          const std::vector<int64_t>& data,
                          uint64_t upgrade_after = 1ull << 40) {
  const int64_t n = static_cast<int64_t>(data.size());
  RunOutput r;
  r.out.assign(n, 0);
  ExecContext ctx(MapFactory(), n);
  ctx.BindInput("src", interp::DataBinding::Raw(
                           TypeId::kI64, const_cast<int64_t*>(data.data()), n));
  ctx.BindOutput(
      "out", interp::DataBinding::Raw(TypeId::kI64, r.out.data(), n, true));
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kAdaptiveJit;
  opts.vm.optimize_after_iterations = 2;
  opts.vm.jit_tier_policy = policy;
  opts.vm.jit_upgrade_after = upgrade_after;
  opts.vm.disk_cache = std::make_shared<jit::DiskTraceCache>(dir, 64 << 20);
  AVM_ASSIGN_OR_RETURN(r.report, ExecEngine::Execute(ctx, opts));
  return r;
}

TEST(WarmRestartTest, FreshEngineIsWarmFromPopulatedDir) {
  if (!jit::SourceJit::Available()) GTEST_SKIP() << "no host compiler";
  const std::string dir = MakeTempDir();
  DataGen gen(41);
  auto data = gen.UniformI64(64'000, -1000, 1000);

  // Cold process: compiles, misses the (empty) disk cache, stores.
  auto cold = RunOnce(dir, jit::TierPolicy::kOptimizedOnly, data);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold.value().report.traces_compiled, 1u);
  EXPECT_GE(cold.value().report.disk_cache_misses, 1u);
  EXPECT_EQ(cold.value().report.disk_cache_hits, 0u);
  EXPECT_EQ(cold.value().report.opt_compiles, 1u);
  ASSERT_FALSE(CacheEntries(dir).empty());

  // Warm restart: ZERO compilations, machine code straight from disk,
  // byte-identical output. This is the acceptance contract of the PR.
  auto warm = RunOnce(dir, jit::TierPolicy::kOptimizedOnly, data);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm.value().report.traces_compiled, 0u);
  EXPECT_GE(warm.value().report.disk_cache_hits, 1u);
  EXPECT_GT(warm.value().report.injection_runs, 0u);
  EXPECT_EQ(warm.value().out, cold.value().out);
}

TEST(WarmRestartTest, TieredPolicyRestartsAtStoredTier) {
  if (!jit::SourceJit::Available()) GTEST_SKIP() << "no host compiler";
  const std::string dir = MakeTempDir();
  DataGen gen(43);
  auto data = gen.UniformI64(64'000, -1000, 1000);

  // Cold tiered run: the first execution pays only a fast (-O0) compile.
  auto cold = RunOnce(dir, jit::TierPolicy::kTiered, data);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold.value().report.jit_tier, std::string("tiered"));
  EXPECT_EQ(cold.value().report.fast_compiles, 1u);
  EXPECT_EQ(cold.value().report.opt_compiles, 0u);

  auto warm = RunOnce(dir, jit::TierPolicy::kTiered, data);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm.value().report.traces_compiled, 0u);
  EXPECT_GE(warm.value().report.disk_cache_hits, 1u);
  EXPECT_EQ(warm.value().out, cold.value().out);
}

TEST(WarmRestartTest, CorruptEntriesRecompiledNotLoaded) {
  if (!jit::SourceJit::Available()) GTEST_SKIP() << "no host compiler";
  const std::string dir = MakeTempDir();
  DataGen gen(47);
  auto data = gen.UniformI64(64'000, -1000, 1000);

  auto cold = RunOnce(dir, jit::TierPolicy::kOptimizedOnly, data);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  // Flip one byte in every stored artifact (past the 56-byte header, into
  // the machine-code payload the checksum covers).
  std::vector<std::string> entries = CacheEntries(dir);
  ASSERT_FALSE(entries.empty());
  for (const std::string& path : entries) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fseek(f, 100, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 100, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }

  // The restart detects every poisoned entry, recompiles, and still
  // produces identical results — corruption costs latency, never answers.
  auto warm = RunOnce(dir, jit::TierPolicy::kOptimizedOnly, data);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GE(warm.value().report.disk_cache_corrupt, 1u);
  EXPECT_EQ(warm.value().report.traces_compiled, 1u);
  EXPECT_EQ(warm.value().report.disk_cache_hits, 0u);
  EXPECT_EQ(warm.value().out, cold.value().out);

  // The recompile re-published a good entry: the next restart is warm again.
  auto rewarm = RunOnce(dir, jit::TierPolicy::kOptimizedOnly, data);
  ASSERT_TRUE(rewarm.ok()) << rewarm.status().ToString();
  EXPECT_EQ(rewarm.value().report.traces_compiled, 0u);
  EXPECT_GE(rewarm.value().report.disk_cache_hits, 1u);
}

TEST(WarmRestartTest, TwoEnginesShareOneCacheDirConcurrently) {
  if (!jit::SourceJit::Available()) GTEST_SKIP() << "no host compiler";
  const std::string dir = MakeTempDir();
  DataGen gen(53);
  auto data = gen.UniformI64(48'000, -1000, 1000);

  // Two independent engine+cache instances (two "servers") race the same
  // directory: rename-publication and checksummed reads mean both succeed
  // with correct results no matter who stores first.
  std::vector<Result<RunOutput>> results;
  results.reserve(2);
  results.push_back(Status::Internal("not run"));
  results.push_back(Status::Internal("not run"));
  std::thread t0([&] {
    results[0] = RunOnce(dir, jit::TierPolicy::kOptimizedOnly, data);
  });
  std::thread t1([&] {
    results[1] = RunOnce(dir, jit::TierPolicy::kOptimizedOnly, data);
  });
  t0.join();
  t1.join();
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_TRUE(results[1].ok()) << results[1].status().ToString();
  EXPECT_EQ(results[0].value().out, results[1].value().out);
  for (int64_t i = 0; i < 48'000; i += 373) {
    ASSERT_EQ(results[0].value().out[i], data[i] * 7 - 3) << "row " << i;
  }
}

TEST(WarmRestartTest, HotTraceUpgradesToOptimizedTier) {
  if (!jit::SourceJit::Available()) GTEST_SKIP() << "no host compiler";
  const std::string dir = MakeTempDir();
  DataGen gen(59);
  auto data = gen.UniformI64(96'000, -1000, 1000);

  // Tiered with an aggressive hotness threshold: the injection crosses it
  // within a few chunks, claiming an async upgrade mid-run.
  auto run = RunOnce(dir, jit::TierPolicy::kTiered, data,
                     /*upgrade_after=*/1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().report.fast_compiles, 1u);
  EXPECT_GE(run.value().report.tier_upgrades_requested, 1u);
  for (int64_t i = 0; i < 96'000; i += 373) {
    ASSERT_EQ(run.value().out[i], data[i] * 7 - 3) << "row " << i;
  }

  // The upgrade thread publishes the optimized artifact to the shared
  // directory when it finishes; wait for it (generously — it runs a real
  // -O2 compile).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool opt_stored = false;
  while (!opt_stored && std::chrono::steady_clock::now() < deadline) {
    for (const std::string& path : CacheEntries(dir)) {
      if (path.find(".opt.avmtc") != std::string::npos) opt_stored = true;
    }
    if (!opt_stored) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(opt_stored)
      << "async tier upgrade never published an optimized artifact";

  // A restarted engine resumes at the best tier reached, still compiling
  // nothing.
  auto warm = RunOnce(dir, jit::TierPolicy::kTiered, data);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm.value().report.traces_compiled, 0u);
  EXPECT_GE(warm.value().report.disk_cache_hits, 1u);
  EXPECT_EQ(warm.value().out, run.value().out);
}

TEST(WarmRestartTest, SharedEnvCacheDirContract) {
  // The CI warm-restart job's measured assertion. It builds once, then runs
  // the jit/engine labels twice with one shared AVM_TRACE_CACHE_DIR: the
  // cold pass populates it, and the warm pass — a genuinely fresh process —
  // sets AVM_CI_EXPECT_WARM=1, turning this test into the hard contract:
  // zero backend compiles, all machine code from disk.
  if (!jit::SourceJit::Available()) GTEST_SKIP() << "no host compiler";
  if (std::getenv("AVM_TRACE_CACHE_DIR") == nullptr) {
    GTEST_SKIP() << "AVM_TRACE_CACHE_DIR unset";
  }
  const int64_t n = 64'000;
  DataGen gen(61);
  auto data = gen.UniformI64(n, -1000, 1000);
  std::vector<int64_t> out(n, 0);
  // A program shape private to this test, so its cache entry is written and
  // read only here.
  ExecContext ctx(
      [](int64_t rows) -> Result<dsl::Program> {
        return dsl::MakeMapPipeline(
            TypeId::kI64,
            dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(13) +
                                   dsl::ConstI(29)),
            rows);
      },
      n);
  ctx.BindInput("src", interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
  ctx.BindOutput("out",
                 interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
  EngineOptions opts;  // disk cache resolved from the environment
  opts.strategy = ExecutionStrategy::kAdaptiveJit;
  opts.vm.optimize_after_iterations = 2;
  auto report = ExecEngine::Execute(ctx, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  if (std::getenv("AVM_CI_EXPECT_WARM") != nullptr) {
    EXPECT_EQ(report.value().traces_compiled, 0u)
        << "warm pass recompiled: " << report.value().ToString();
    EXPECT_GT(report.value().disk_cache_hits, 0u)
        << "warm pass missed the disk cache: " << report.value().ToString();
  } else {
    EXPECT_GT(report.value().traces_compiled + report.value().disk_cache_hits,
              0u);
  }
  for (int64_t i = 0; i < n; i += 379) {
    ASSERT_EQ(out[i], data[i] * 13 + 29) << "row " << i;
  }
}

}  // namespace
}  // namespace avm::engine
