#include "engine/exec_engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dsl/builder.h"
#include "dsl/typecheck.h"
#include "jit/source_jit.h"
#include "relational/q1.h"
#include "storage/datagen.h"

namespace avm::engine {
namespace {

using relational::Q1DslRun;
using relational::Q1Result;
using relational::RunQ1Engine;
using relational::RunQ1Scalar;

std::unique_ptr<Table> SmallLineitem(uint64_t rows = 120'000) {
  LineitemSpec spec;
  spec.num_rows = rows;
  return MakeLineitem(spec);
}

ExecContext::ProgramFactory TripleMapFactory() {
  return [](int64_t rows) -> Result<dsl::Program> {
    return dsl::MakeMapPipeline(
        TypeId::kI64,
        dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(3) + dsl::ConstI(1)),
        rows);
  };
}

TEST(ExecEngineTest, SerialInterpretedMapPipeline) {
  const int64_t n = 10'000;
  DataGen gen(3);
  auto data = gen.UniformI64(n, -100, 100);
  std::vector<int64_t> out(n);

  ExecContext ctx(TripleMapFactory(), n);
  ctx.BindInput("src", interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
  ctx.BindOutput("out",
                 interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kInterpret;
  auto report = ExecEngine::Execute(ctx, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().workers, 1u);
  EXPECT_EQ(report.value().rows, static_cast<uint64_t>(n));
  EXPECT_EQ(report.value().traces_compiled, 0u);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], data[i] * 3 + 1) << "row " << i;
  }
}

TEST(ExecEngineTest, ReportRecordsResolvedKernelTier) {
  const int64_t n = 4'096;
  DataGen gen(5);
  auto data = gen.UniformI64(n, -100, 100);
  std::vector<int64_t> out(n);

  auto run_with_tier = [&](interp::KernelTier tier) -> std::string {
    ExecContext ctx(TripleMapFactory(), n);
    ctx.BindInput("src",
                  interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
    ctx.BindOutput(
        "out", interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
    EngineOptions opts;
    opts.strategy = ExecutionStrategy::kInterpret;
    opts.vm.interp.kernel_tier = tier;
    auto report = ExecEngine::Execute(ctx, opts);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? report.value().kernel_tier : "";
  };

  // kAuto resolves to whatever the host supports; the report must name it.
  EXPECT_EQ(run_with_tier(interp::KernelTier::kAuto),
            interp::TierName(interp::ResolveKernelTier(interp::KernelTier::kAuto)));
  // Forcing scalar always sticks — every host supports it.
  EXPECT_EQ(run_with_tier(interp::KernelTier::kScalar), "scalar");
}

TEST(ExecEngineTest, ParallelMapPipelineMatchesSerial) {
  const int64_t n = 500'000;
  DataGen gen(7);
  auto data = gen.UniformI64(n, -1000, 1000);
  std::vector<int64_t> serial_out(n), parallel_out(n);

  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kInterpret;
  {
    ExecContext ctx(TripleMapFactory(), n);
    ctx.BindInput("src",
                  interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
    ctx.BindOutput("out", interp::DataBinding::Raw(
                              TypeId::kI64, serial_out.data(), n, true));
    ASSERT_TRUE(ExecEngine::Execute(ctx, opts).ok());
  }
  opts.num_workers = 4;
  {
    ExecContext ctx(TripleMapFactory(), n);
    ctx.BindInput("src",
                  interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
    ctx.BindOutput("out", interp::DataBinding::Raw(
                              TypeId::kI64, parallel_out.data(), n, true));
    auto report = ExecEngine::Execute(ctx, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report.value().morsels, 1u);
    EXPECT_GT(report.value().workers, 1u);
  }
  EXPECT_EQ(serial_out, parallel_out);
}

TEST(ExecEngineTest, ParallelColumnInputSlicing) {
  // Column-backed input: morsel slices must decode the right row ranges
  // even when morsel boundaries disagree with block boundaries.
  const uint64_t n = 200'000;
  DataGen gen(11);
  auto values = gen.UniformI64(n, 0, 1 << 20);
  Column col(TypeId::kI64, /*block_size=*/8192);
  ASSERT_TRUE(col.AppendValues(values.data(), static_cast<uint32_t>(n)).ok());

  std::vector<int64_t> out(n);
  ExecContext ctx(TripleMapFactory(), n);
  ctx.BindInputColumn("src", &col);
  ctx.BindOutput("out",
                 interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kInterpret;
  opts.num_workers = 4;
  opts.morsel_rows = 20'000;  // not block-aligned
  auto report = ExecEngine::Execute(ctx, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report.value().morsels, 10u);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], values[i] * 3 + 1) << "row " << i;
  }
}

TEST(ExecEngineTest, ParallelQ1BitIdenticalToSingleThreaded) {
  auto table = SmallLineitem();
  auto oracle = RunQ1Scalar(*table);
  ASSERT_TRUE(oracle.ok());

  EngineOptions serial;
  serial.strategy = ExecutionStrategy::kInterpret;
  auto s = RunQ1Engine(*table, serial);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s.value().result, oracle.value());

  EngineOptions parallel = serial;
  parallel.num_workers = 4;
  auto p = RunQ1Engine(*table, parallel);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_GT(p.value().report.morsels, 1u);
  // Integer aggregates: merge order cannot perturb the result — the
  // parallel run must be bit-identical to the serial one.
  EXPECT_EQ(p.value().result, s.value().result);
  EXPECT_EQ(p.value().result, oracle.value());
}

TEST(ExecEngineTest, ParallelQ1WithSharedJitCache) {
  if (!jit::SourceJit::Available()) {
    GTEST_SKIP() << "no host compiler";
  }
  auto table = SmallLineitem();
  auto oracle = RunQ1Scalar(*table);
  ASSERT_TRUE(oracle.ok());

  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kAdaptiveJit;
  opts.num_workers = 4;
  opts.vm.optimize_after_iterations = 2;
  auto run = RunQ1Engine(*table, opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().result, oracle.value());
  EXPECT_GT(run.value().report.injection_runs, 0u);
  // The shared TraceCache means later workers reuse what the first worker
  // compiled instead of compiling their own copies: far fewer compilations
  // than workers * traces, and at least one cache reuse.
  EXPECT_GT(run.value().report.traces_compiled +
                run.value().report.disk_cache_hits,
            0u);
  EXPECT_GT(run.value().report.traces_reused, 0u);
}

TEST(ExecEngineTest, RepeatedRunsReuseEngineTraceCache) {
  if (!jit::SourceJit::Available()) {
    GTEST_SKIP() << "no host compiler";
  }
  // A single-map pipeline partitions into exactly one trace regardless of
  // profiled costs, so its situation fingerprint is stable run-over-run
  // (Q1's multi-trace partition can shift with cycle noise).
  const int64_t n = 64'000;
  DataGen gen(23);
  auto data = gen.UniformI64(n, -100, 100);
  std::vector<int64_t> out(n);

  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kAdaptiveJit;
  opts.vm.optimize_after_iterations = 2;
  ExecEngine engine(opts);

  auto run_once = [&]() -> Result<ExecReport> {
    // Re-create the context per run, like a repeated query would.
    ExecContext ctx(TripleMapFactory(), n);
    ctx.BindInput("src",
                  interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
    ctx.BindOutput("out", interp::DataBinding::Raw(TypeId::kI64, out.data(),
                                                   n, true));
    return engine.Run(ctx);
  };

  auto first = run_once();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Warm persistent caches satisfy the first compile from disk instead.
  EXPECT_EQ(first.value().traces_compiled + first.value().disk_cache_hits, 1u);
  auto second = run_once();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Second run of the same query shape: the trace comes from the engine's
  // persistent cache, not a fresh compilation.
  EXPECT_GT(second.value().traces_reused, 0u);
  EXPECT_EQ(second.value().traces_compiled, 0u);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], data[i] * 3 + 1) << "row " << i;
  }
}

// Compute-heavy map: enough scalar ops per row that the placer's cost model
// favors the GPU even with cold PCIe transfers both ways.
ExecContext::ProgramFactory DeepMapFactory() {
  return [](int64_t rows) -> Result<dsl::Program> {
    using namespace dsl;
    ExprPtr body = Var("x");
    for (int d = 0; d < 10; ++d) {
      body = body * ConstI(3) + Var("x");
    }
    return MakeMapPipeline(TypeId::kI64, Lambda({"x"}, std::move(body)),
                           rows);
  };
}

int64_t DeepMapReference(int64_t x) {
  int64_t v = x;
  for (int d = 0; d < 10; ++d) v = v * 3 + x;
  return v;
}

TEST(ExecEngineTest, GpuOffloadRunsMapFragmentOnSimDevice) {
  const int64_t n = 8 << 20;  // large enough that the placer picks the GPU
  DataGen gen(13);
  auto data = gen.UniformI64(n, -500, 500);
  std::vector<int64_t> out(n);

  ExecContext ctx(DeepMapFactory(), n);
  ctx.BindInput("src", interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
  ctx.BindOutput("out",
                 interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kGpuOffload;
  auto report = ExecEngine::Execute(ctx, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().device, "gpu-sim");
  EXPECT_GT(report.value().gpu_sim_seconds, 0.0);
  for (int64_t i = 0; i < n; i += 997) {
    ASSERT_EQ(out[i], DeepMapReference(data[i])) << "row " << i;
  }
}

TEST(ExecEngineTest, GpuOffloadFallsBackToCpuForUnsupportedShapes) {
  // Q1 (scatter aggregation) is not an offloadable map fragment: the
  // engine must transparently fall back to the CPU path.
  auto table = SmallLineitem(30'000);
  auto oracle = RunQ1Scalar(*table);
  ASSERT_TRUE(oracle.ok());
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kGpuOffload;
  opts.vm.enable_jit = false;
  auto run = RunQ1Engine(*table, opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().result, oracle.value());
  EXPECT_EQ(run.value().report.device, "cpu");
}

TEST(ExecEngineTest, UndersizedBindingRejectedNotHung) {
  // The engine chose the loop bound (total_rows); a shorter input binding
  // would spin the interpreter on empty reads forever. Must error instead.
  const int64_t n = 1000;
  std::vector<int64_t> data(500, 1), out(n);
  ExecContext ctx(TripleMapFactory(), n);
  ctx.BindInput("src",
                interp::DataBinding::Raw(TypeId::kI64, data.data(), 500));
  ctx.BindOutput("out",
                 interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kInterpret;
  auto report = ExecEngine::Execute(ctx, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("src"), std::string::npos);
}

TEST(ExecEngineTest, CondensingProgramsForcedSerial) {
  // Condensed outputs land at data-dependent positions, so row-partitioned
  // parallelism would corrupt them: the engine must detect the condense and
  // fall back to a serial run even when workers were requested.
  const int64_t n = 100'000;
  DataGen gen(29);
  auto data = gen.UniformI64(n, 0, 1000);
  std::vector<int64_t> out(n, -1);
  int64_t survivors = -1;

  ExecContext ctx(
      [](int64_t rows) -> Result<dsl::Program> {
        return dsl::MakeFilterPipeline(
            TypeId::kI64,
            dsl::Lambda({"x"}, dsl::Call(dsl::ScalarOp::kLt,
                                         {dsl::Var("x"), dsl::ConstI(500)})),
            rows);
      },
      n);
  ctx.BindInput("src", interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
  ctx.BindOutput("out",
                 interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
  ctx.set_inspector([&](const interp::Interpreter& in) {
    survivors = in.GetScalar("k").ValueOrDie().AsI64();
  });
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kInterpret;
  opts.num_workers = 4;
  auto report = ExecEngine::Execute(ctx, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().morsels, 1u);
  EXPECT_EQ(report.value().workers, 1u);
  // The dropped parallelism request must be surfaced, not silently eaten.
  EXPECT_NE(report.value().ran_serial_reason.find("row-partitionable"),
            std::string::npos)
      << report.value().ran_serial_reason;

  std::vector<int64_t> expect;
  for (int64_t v : data) {
    if (v < 500) expect.push_back(v);
  }
  ASSERT_EQ(survivors, static_cast<int64_t>(expect.size()));
  for (size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(out[i], expect[i]) << "survivor " << i;
  }
}

TEST(ExecEngineTest, FixedProgramContextReportsSerialReason) {
  // Fixed-program contexts cannot be morsel-partitioned (no per-morsel
  // factory): requesting workers must yield a report that says why the run
  // was serial instead of ignoring num_workers on the floor.
  const int64_t n = 50'000;
  DataGen gen(31);
  auto data = gen.UniformI64(n, 0, 100);
  std::vector<int64_t> out(n);
  dsl::Program program = dsl::MakeMapPipeline(
      TypeId::kI64, dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(2)), n);
  ASSERT_TRUE(dsl::TypeCheck(&program).ok());

  ExecContext ctx(&program);
  ctx.BindInput("src", interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
  ctx.BindOutput("out",
                 interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kInterpret;
  opts.num_workers = 4;
  auto report = ExecEngine::Execute(ctx, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().workers, 1u);
  EXPECT_NE(report.value().ran_serial_reason.find("fixed-program"),
            std::string::npos)
      << "reason: " << report.value().ran_serial_reason;
  // Serial runs that were never asked to parallelize stay silent.
  opts.num_workers = 1;
  auto serial = ExecEngine::Execute(ctx, opts);
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(serial.value().ran_serial_reason.empty());
}

TEST(ExecEngineTest, InspectorSeesEveryWorker) {
  const int64_t n = 200'000;
  DataGen gen(17);
  auto data = gen.UniformI64(n, 0, 100);
  std::vector<int64_t> out(n);
  ExecContext ctx(TripleMapFactory(), n);
  ctx.BindInput("src", interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
  ctx.BindOutput("out",
                 interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
  int inspections = 0;
  ctx.set_inspector([&](const interp::Interpreter&) { ++inspections; });
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kInterpret;
  opts.num_workers = 4;
  auto report = ExecEngine::Execute(ctx, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(static_cast<size_t>(inspections), report.value().morsels);
}

}  // namespace
}  // namespace avm::engine
