#include "engine/query_builder.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "relational/join.h"
#include "relational/q1.h"
#include "storage/datagen.h"
#include "util/rng.h"

namespace avm::engine {
namespace {

using dsl::Cast;
using dsl::ConstI;
using dsl::Var;

/// Small two-column table with known contents for hand-checked aggregates.
struct TinyTable {
  std::unique_ptr<Table> table;
  std::vector<int64_t> a, b;

  explicit TinyTable(uint64_t n = 50'000) {
    Schema schema({{"a", TypeId::kI64}, {"b", TypeId::kI64}});
    table = std::make_unique<Table>(schema);
    Rng rng(17);
    a.resize(n);
    b.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      a[i] = rng.NextInRange(0, 999);
      b[i] = rng.NextInRange(0, 999);
    }
    EXPECT_TRUE(table->column(0)
                    .AppendValues(a.data(), static_cast<uint32_t>(n))
                    .ok());
    EXPECT_TRUE(table->column(1)
                    .AppendValues(b.data(), static_cast<uint32_t>(n))
                    .ok());
  }
};

EngineOptions Interp(size_t workers = 1) {
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kInterpret;
  opts.num_workers = workers;
  return opts;
}

TEST(QueryBuilderTest, FilterSumCountSingleGroup) {
  TinyTable t;
  QueryBuilder qb(*t.table);
  qb.Filter(Var("a") < ConstI(500))
      .Sum("sum_b", Var("b"))
      .Count("rows");
  Query q = qb.Build().ValueOrDie();
  ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp()).ok());

  int64_t expect_sum = 0, expect_count = 0;
  for (size_t i = 0; i < t.a.size(); ++i) {
    if (t.a[i] < 500) {
      expect_sum += t.b[i];
      ++expect_count;
    }
  }
  EXPECT_EQ(q.aggregate("sum_b")[0], expect_sum);
  EXPECT_EQ(q.aggregate("rows")[0], expect_count);
  EXPECT_EQ(q.num_groups(), 1u);
}

TEST(QueryBuilderTest, MultiColumnPredicateAndChainedFilters) {
  TinyTable t;
  QueryBuilder qb(*t.table);
  // Two-input predicate exercises the materialize-then-select path; the
  // second filter conjoins over a projection defined between them.
  qb.Filter(Var("a") < Var("b"))
      .Project("d", Var("b") - Var("a"))
      .Filter(Var("d") > ConstI(100))
      .Sum("sum_d", Var("d"))
      .Count("rows");
  Query q = qb.Build().ValueOrDie();
  ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp()).ok());

  int64_t expect_sum = 0, expect_count = 0;
  for (size_t i = 0; i < t.a.size(); ++i) {
    if (t.a[i] < t.b[i] && t.b[i] - t.a[i] > 100) {
      expect_sum += t.b[i] - t.a[i];
      ++expect_count;
    }
  }
  EXPECT_EQ(q.aggregate("sum_d")[0], expect_sum);
  EXPECT_EQ(q.aggregate("rows")[0], expect_count);
}

TEST(QueryBuilderTest, GroupedAggregatesParallelMatchSerial) {
  TinyTable t;
  auto build = [&]() {
    QueryBuilder qb(*t.table);
    qb.Filter(Var("a") >= ConstI(100))
        .Aggregate(Var("b") / ConstI(250), 4)  // groups 0..3
        .Sum("sum_a", Var("a"))
        .Count("n");
    return qb.Build().ValueOrDie();
  };
  Query serial = build();
  ASSERT_TRUE(ExecEngine::Execute(serial.context(), Interp(1)).ok());
  Query parallel = build();
  auto rep = ExecEngine::Execute(parallel.context(), Interp(4));
  ASSERT_TRUE(rep.ok());
  EXPECT_GT(rep.value().morsels, 1u);

  std::vector<int64_t> expect_sum(4, 0), expect_n(4, 0);
  for (size_t i = 0; i < t.a.size(); ++i) {
    if (t.a[i] >= 100) {
      expect_sum[t.b[i] / 250] += t.a[i];
      expect_n[t.b[i] / 250] += 1;
    }
  }
  for (int g = 0; g < 4; ++g) {
    EXPECT_EQ(serial.aggregate("sum_a")[g], expect_sum[g]) << "group " << g;
    EXPECT_EQ(parallel.aggregate("sum_a")[g], expect_sum[g]) << "group " << g;
    EXPECT_EQ(parallel.aggregate("n")[g], expect_n[g]) << "group " << g;
  }
}

TEST(QueryBuilderTest, Q1ViaBuilderMatchesScalarOracle) {
  LineitemSpec spec;
  spec.num_rows = 80'000;
  auto lineitem = MakeLineitem(spec);
  auto oracle = relational::RunQ1Scalar(*lineitem).ValueOrDie();

  Query q = relational::MakeQ1Query(*lineitem).ValueOrDie();
  ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp(4)).ok());
  EXPECT_EQ(relational::Q1ResultFromQuery(q), oracle);
}

TEST(QueryBuilderTest, SemiJoinMatchesHashChainScan) {
  const uint64_t n = 120'000;
  Schema schema({{"k0", TypeId::kI64}, {"k1", TypeId::kI64}});
  Table probe(schema);
  Rng rng(23);
  std::vector<int64_t> k0(n), k1(n);
  for (uint64_t i = 0; i < n; ++i) {
    k0[i] = rng.NextInRange(0, 3000);
    k1[i] = rng.NextInRange(0, 3000);
  }
  ASSERT_TRUE(
      probe.column(0).AppendValues(k0.data(), static_cast<uint32_t>(n)).ok());
  ASSERT_TRUE(
      probe.column(1).AppendValues(k1.data(), static_cast<uint32_t>(n)).ok());
  relational::HashSetI64 f0, f1;
  for (int i = 0; i < 1500; ++i) f0.Insert(rng.NextInRange(0, 3000));
  for (int i = 0; i < 200; ++i) f1.Insert(rng.NextInRange(0, 3000));

  auto hash_scan = relational::RunSemijoinScan(
      probe, {"k0", "k1"}, {&f0, &f1},
      relational::AdaptiveSemijoinChain::OrderPolicy::kFixed);
  ASSERT_TRUE(hash_scan.ok());

  auto serial =
      relational::RunSemijoinEngine(probe, {"k0", "k1"}, {&f0, &f1},
                                    Interp(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(serial.value().survivors, hash_scan.value().survivors);

  auto parallel =
      relational::RunSemijoinEngine(probe, {"k0", "k1"}, {&f0, &f1},
                                    Interp(4));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel.value().survivors, hash_scan.value().survivors);
  // Gathers read the shared membership arrays, scatters hit accumulators:
  // the query must actually run morsel-parallel, not fall back to serial.
  EXPECT_GT(parallel.value().report.morsels, 1u);
  EXPECT_TRUE(parallel.value().report.ran_serial_reason.empty())
      << parallel.value().report.ran_serial_reason;
}

TEST(QueryBuilderTest, ResetAggregatesAllowsRerun) {
  TinyTable t(10'000);
  QueryBuilder qb(*t.table);
  qb.Filter(Var("a") < ConstI(500)).Count("n");
  Query q = qb.Build().ValueOrDie();
  ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp()).ok());
  const int64_t once = q.aggregate("n")[0];
  ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp()).ok());
  EXPECT_EQ(q.aggregate("n")[0], 2 * once);  // accumulators persist...
  q.ResetAggregates();
  ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp()).ok());
  EXPECT_EQ(q.aggregate("n")[0], once);  // ...until explicitly reset
}

TEST(QueryBuilderTest, OutOfRangeSemiJoinKeyFailsCleanly) {
  // A probe key outside the membership domain must fail the run with
  // OutOfRange (the gather bounds-checks), not read out-of-bounds memory.
  TinyTable t(1'000);  // keys in [0, 999]
  QueryBuilder qb(*t.table);
  qb.SemiJoin("a", std::vector<int64_t>(10, 1)).Count("n");
  Query q = qb.Build().ValueOrDie();
  auto r = ExecEngine::Execute(q.context(), Interp());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange()) << r.status().ToString();
}

TEST(QueryBuilderTest, BuilderReusableAfterBuild) {
  TinyTable t(10'000);
  QueryBuilder qb(*t.table);
  qb.Filter(Var("a") < ConstI(500)).Count("n");
  Query first = qb.Build().ValueOrDie();
  // Extend the same builder and build again: the second query carries the
  // extra aggregate; the first is unaffected.
  qb.Sum("sum_b", Var("b"));
  Query second = qb.Build().ValueOrDie();

  ASSERT_TRUE(ExecEngine::Execute(first.context(), Interp()).ok());
  ASSERT_TRUE(ExecEngine::Execute(second.context(), Interp()).ok());
  int64_t expect_n = 0, expect_sum = 0;
  for (size_t i = 0; i < t.a.size(); ++i) {
    if (t.a[i] < 500) {
      ++expect_n;
      expect_sum += t.b[i];
    }
  }
  EXPECT_EQ(first.aggregate("n")[0], expect_n);
  EXPECT_EQ(second.aggregate("n")[0], expect_n);
  EXPECT_EQ(second.aggregate("sum_b")[0], expect_sum);
}

// ----------------------------------------------------------- error paths

TEST(QueryBuilderTest, UnknownColumnRejectedAtBuild) {
  TinyTable t(100);
  QueryBuilder qb(*t.table);
  qb.Filter(Var("nope") < ConstI(5)).Count("n");
  auto r = qb.Build();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("nope"), std::string::npos);
}

TEST(QueryBuilderTest, NoAggregatesRejected) {
  TinyTable t(100);
  QueryBuilder qb(*t.table);
  qb.Filter(Var("a") < ConstI(5));
  EXPECT_FALSE(qb.Build().ok());
}

TEST(QueryBuilderTest, ReservedAndDuplicateNamesRejected) {
  TinyTable t(100);
  {
    QueryBuilder qb(*t.table);
    qb.Project("col_a", Var("a") + ConstI(1)).Count("n");
    EXPECT_FALSE(qb.Build().ok());
  }
  {
    QueryBuilder qb(*t.table);
    qb.Sum("x", Var("a")).Sum("x", Var("b"));
    EXPECT_FALSE(qb.Build().ok());
  }
  {
    QueryBuilder qb(*t.table);
    qb.Project("a", Var("b") + ConstI(1)).Count("n");  // shadows column
    EXPECT_FALSE(qb.Build().ok());
  }
  {
    QueryBuilder qb(*t.table);
    // Collides with the lowering's generated filter-selection names.
    qb.Project("okay0", Var("a") * ConstI(2)).Count("n");
    EXPECT_FALSE(qb.Build().ok());
  }
  {
    // A table column whose NAME collides with the lowering's reserved
    // names must be diagnosed clearly, not fail with a lowering-internal
    // type error.
    Schema schema({{"i", TypeId::kI64}});
    Table bad(schema);
    std::vector<int64_t> v(16, 1);
    ASSERT_TRUE(bad.column(0).AppendValues(v.data(), 16).ok());
    QueryBuilder qb(bad);
    qb.Sum("s", Var("i"));
    auto r = qb.Build();
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("reserved"), std::string::npos)
        << r.status().ToString();
  }
}

TEST(QueryBuilderTest, SkeletonInExpressionRejected) {
  TinyTable t(100);
  QueryBuilder qb(*t.table);
  qb.Sum("s", dsl::Skeleton(dsl::SkeletonKind::kLen, {Var("a")}));
  EXPECT_FALSE(qb.Build().ok());
}

TEST(QueryBuilderTest, ConflictingSelectionCombinationRejected) {
  TinyTable t(100);
  QueryBuilder qb(*t.table);
  // p and q2 are computed under different filters' selections; the
  // interpreter cannot combine arrays carrying different selection vectors,
  // so the builder must reject this shape at Build with a clear message.
  qb.Filter(Var("a") < ConstI(500))
      .Project("p", Var("b") + ConstI(1))
      .Filter(Var("b") < ConstI(900))
      .Project("q2", Var("b") + ConstI(2))
      .Sum("s", Var("p") + Var("q2"));
  auto r = qb.Build();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("filter"), std::string::npos);
}

TEST(QueryBuilderTest, WiderSelectionOnAggregateValuesIsFine) {
  // An aggregate value computed under an EARLIER (wider) selection is
  // sound: the group index carries the final selection, and every selected
  // position was computed. Verify the numbers, not just acceptance.
  TinyTable t;
  QueryBuilder qb(*t.table);
  qb.Filter(Var("a") < ConstI(500))
      .Project("p", Var("b") + ConstI(1))
      .Filter(Var("b") < ConstI(900))
      .Sum("s", Var("p"))
      .Count("n");
  Query q = qb.Build().ValueOrDie();
  ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp()).ok());
  int64_t expect_sum = 0, expect_n = 0;
  for (size_t i = 0; i < t.a.size(); ++i) {
    if (t.a[i] < 500 && t.b[i] < 900) {
      expect_sum += t.b[i] + 1;
      ++expect_n;
    }
  }
  EXPECT_EQ(q.aggregate("s")[0], expect_sum);
  EXPECT_EQ(q.aggregate("n")[0], expect_n);
}

}  // namespace
}  // namespace avm::engine
