// Out-of-core execution tests (docs/SPILL.md): a many-to-many join +
// ORDER BY over a table larger than its memory budget must spill sorted
// runs to disk and still produce byte-identical output at any worker
// count; budget edges (exactly-fits, one-byte-short, smaller than a
// single morsel window) must behave deterministically; and concurrent
// queries sharing one session-wide AVM_MEMORY_BUDGET tracker must
// complete without deadlock or wrong rows.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "engine/query_builder.h"
#include "engine/session.h"
#include "util/rng.h"

namespace avm::engine {
namespace {

using dsl::ConstI;
using dsl::Var;

/// Explicit effectively-unlimited budget for golden/in-memory runs. A
/// budget of 0 would fall back to the session-wide AVM_MEMORY_BUDGET, so
/// under the CI spill-stress lane (which forces that env var low) the
/// "unbudgeted" baselines would spill and their bytes_spilled == 0
/// assertions would lie.
constexpr uint64_t kUnlimited = uint64_t{1} << 40;

EngineOptions Opts(size_t workers, uint64_t budget,
                   ExecutionStrategy strategy = ExecutionStrategy::kInterpret) {
  EngineOptions o;
  o.strategy = strategy;
  o.num_workers = workers;
  o.memory_budget = budget;
  return o;
}

/// Probe fact table f_key / f_a / f_b, keys covering [0, key_hi] with some
/// misses beyond the build domain.
struct ProbeTable {
  std::unique_ptr<Table> table;

  explicit ProbeTable(uint64_t n, int64_t key_hi, uint64_t seed = 17) {
    Schema schema({{"f_key", TypeId::kI64},
                   {"f_a", TypeId::kI64},
                   {"f_b", TypeId::kI64}});
    table = std::make_unique<Table>(schema);
    Rng rng(seed);
    std::vector<int64_t> key(n), a(n), b(n);
    for (uint64_t i = 0; i < n; ++i) {
      key[i] = rng.NextInRange(-3, key_hi + 40);
      a[i] = rng.NextInRange(0, 999);
      b[i] = rng.NextInRange(0, 999);
    }
    EXPECT_TRUE(table->column(0)
                    .AppendValues(key.data(), static_cast<uint32_t>(n))
                    .ok());
    EXPECT_TRUE(table->column(1)
                    .AppendValues(a.data(), static_cast<uint32_t>(n))
                    .ok());
    EXPECT_TRUE(table->column(2)
                    .AppendValues(b.data(), static_cast<uint32_t>(n))
                    .ok());
  }
};

/// Build table with DUPLICATE keys (many-to-many fan-out): every key in
/// [0, key_hi] appears 1-3 times.
struct DupBuildTable {
  std::unique_ptr<Table> table;

  explicit DupBuildTable(int64_t key_hi, uint64_t seed = 23) {
    Schema schema({{"d_key", TypeId::kI64}, {"d_val", TypeId::kI64}});
    table = std::make_unique<Table>(schema);
    Rng rng(seed);
    std::vector<int64_t> key, val;
    for (int64_t k = 0; k <= key_hi; ++k) {
      const int64_t copies = rng.NextInRange(1, 3);
      for (int64_t c = 0; c < copies; ++c) {
        key.push_back(k);
        val.push_back(rng.NextInRange(1, 500));
      }
    }
    EXPECT_TRUE(table->column(0)
                    .AppendValues(key.data(),
                                  static_cast<uint32_t>(key.size()))
                    .ok());
    EXPECT_TRUE(table->column(1)
                    .AppendValues(val.data(),
                                  static_cast<uint32_t>(val.size()))
                    .ok());
  }
};

Query BuildJoinOrderBy(const ProbeTable& probe, const DupBuildTable& build) {
  QueryBuilder qb(*probe.table);
  qb.Filter(Var("f_a") < ConstI(800))
      .Join(*build.table, "f_key", "d_key", {"d_val"})
      .Output("f_key")
      .Output("f_b")
      .Output("d_val")
      .OrderBy("f_key");
  return qb.Build().ValueOrDie();
}

Query BuildRowOrderBy(const ProbeTable& probe) {
  QueryBuilder qb(*probe.table);
  qb.Output("f_a").Output("f_b").OrderBy("f_a");
  return qb.Build().ValueOrDie();
}

void ExpectSameColumns(Query& got, Query& want) {
  ASSERT_EQ(got.num_result_rows(), want.num_result_rows());
  ASSERT_EQ(got.result_columns().size(), want.result_columns().size());
  for (const Query::ResultColumn& wc : want.result_columns()) {
    EXPECT_EQ(got.result_column(wc.name).data, wc.data)
        << "column " << wc.name << " differs";
  }
}

// The acceptance test of the out-of-core tentpole: a spilled many-to-many
// join + ORDER BY is bit-identical to the unbudgeted in-memory run, both
// serial and with 4 workers, under both execution strategies.
TEST(MemoryBudgetTest, SpilledJoinOrderByBitIdenticalToInMemory) {
  ProbeTable probe(40'000, 799);
  DupBuildTable build(799);

  Query golden = BuildJoinOrderBy(probe, build);
  auto grep = ExecEngine::Execute(golden.context(), Opts(1, kUnlimited));
  ASSERT_TRUE(grep.ok()) << grep.status().ToString();
  EXPECT_EQ(grep.value().bytes_spilled, 0u);
  EXPECT_EQ(grep.value().spill_runs, 0u);
  ASSERT_GT(golden.num_result_rows(), 0u);

  // Output windows are ~40k rows x fan_out x 24B >> this budget.
  const uint64_t kBudget = 256 * 1024;
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kInterpret, ExecutionStrategy::kAdaptiveJit}) {
    for (size_t workers : {size_t{1}, size_t{4}}) {
      Query q = BuildJoinOrderBy(probe, build);
      auto rep =
          ExecEngine::Execute(q.context(), Opts(workers, kBudget, strategy));
      ASSERT_TRUE(rep.ok()) << rep.status().ToString();
      EXPECT_GT(rep.value().bytes_spilled, 0u)
          << "workers=" << workers << " strategy=" << StrategyName(strategy);
      EXPECT_GE(rep.value().spill_runs, 2u);
      EXPECT_GT(rep.value().peak_tracked_bytes, 0u);
      ExpectSameColumns(q, golden);
    }
  }
}

// An unordered row query (Output without OrderBy) takes the spill path
// too — runs are concatenated in morsel order instead of merged.
TEST(MemoryBudgetTest, SpilledUnorderedRowQueryMatchesInMemory) {
  ProbeTable probe(30'000, 500);
  auto build_query = [&] {
    QueryBuilder qb(*probe.table);
    qb.Filter(Var("f_b") < ConstI(700)).Output("f_a").Output("f_b");
    return qb.Build().ValueOrDie();
  };
  Query golden = build_query();
  ASSERT_TRUE(ExecEngine::Execute(golden.context(), Opts(1, kUnlimited)).ok());

  for (size_t workers : {size_t{1}, size_t{4}}) {
    Query q = build_query();
    auto rep = ExecEngine::Execute(q.context(), Opts(workers, 64 * 1024));
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_GT(rep.value().bytes_spilled, 0u);
    ExpectSameColumns(q, golden);
  }
}

// Budget edges around the exact window size: exactly-fits stays in
// memory; one byte short spills; both produce identical rows.
TEST(MemoryBudgetTest, BudgetEdgeAtExactWindowBytes) {
  const uint64_t n = 20'000;
  ProbeTable probe(n, 300);
  // No joins/dims/aggregates: the query's only persistent charge is the
  // two i64 output windows.
  const uint64_t window_bytes = n * (8 + 8);

  Query golden = BuildRowOrderBy(probe);
  ASSERT_TRUE(ExecEngine::Execute(golden.context(), Opts(1, kUnlimited)).ok());

  {
    Query q = BuildRowOrderBy(probe);
    auto rep = ExecEngine::Execute(q.context(), Opts(1, window_bytes));
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_EQ(rep.value().bytes_spilled, 0u) << "budget exactly fits";
    EXPECT_EQ(rep.value().spill_runs, 0u);
    ExpectSameColumns(q, golden);
  }
  {
    Query q = BuildRowOrderBy(probe);
    auto rep = ExecEngine::Execute(q.context(), Opts(1, window_bytes - 1));
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_GT(rep.value().bytes_spilled, 0u) << "one byte short must spill";
    ExpectSameColumns(q, golden);
  }
}

// A budget that cannot hold even one chunk-sized morsel scratch window is
// a configuration error: the query must fail with kResourceExhausted, not
// hang, crash, or silently ignore the budget.
TEST(MemoryBudgetTest, BudgetSmallerThanOneMorselWindowFailsCleanly) {
  ProbeTable probe(20'000, 300);
  Query q = BuildRowOrderBy(probe);
  // One chunk (1024 rows) of the two i64 windows needs 16 KiB.
  auto rep = ExecEngine::Execute(q.context(), Opts(1, 4096));
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), StatusCode::kResourceExhausted)
      << rep.status().ToString();
}

// Several clients of one Session share the session-wide AVM_MEMORY_BUDGET
// tracker: whoever claims the budget first keeps windows resident, the
// rest spill — everyone completes (no deadlock: scratch charges are
// transient and never block) with byte-identical rows.
TEST(MemoryBudgetTest, ConcurrentQueriesShareSessionBudget) {
  ProbeTable probe(20'000, 300);
  Query golden = BuildRowOrderBy(probe);
  ASSERT_TRUE(ExecEngine::Execute(golden.context(), Opts(1, kUnlimited)).ok());

  // Window bytes per query: 20'000 x 16 = 320'000; the shared budget fits
  // at most one query's resident windows.
  ASSERT_EQ(::setenv("AVM_MEMORY_BUDGET", "400000", 1), 0);
  {
    SessionOptions so;
    so.num_workers = 4;
    Session session(so);
    QueryOptions qo;
    qo.strategy = ExecutionStrategy::kInterpret;

    constexpr size_t kClients = 3;
    std::vector<Query> queries;
    queries.reserve(kClients);
    for (size_t i = 0; i < kClients; ++i) {
      queries.push_back(BuildRowOrderBy(probe));
    }
    std::vector<QueryHandle> handles;
    handles.reserve(kClients);
    for (size_t i = 0; i < kClients; ++i) {
      handles.push_back(session.Submit(queries[i].context(), qo));
    }
    uint64_t total_spilled = 0;
    for (size_t i = 0; i < kClients; ++i) {
      auto rep = handles[i].Wait();
      ASSERT_TRUE(rep.ok()) << "client " << i << ": "
                            << rep.status().ToString();
      total_spilled += rep.value().bytes_spilled;
      ExpectSameColumns(queries[i], golden);
    }
    // The budget fits one resident window set, so with three concurrent
    // clients at least one must have spilled.
    EXPECT_GT(total_spilled, 0u);
  }
  ASSERT_EQ(::unsetenv("AVM_MEMORY_BUDGET"), 0);
}

// Re-submitting the same Query alternately with and without a budget must
// re-decide resident-vs-spill per submission (the prepare hook rebinds
// windows each time) and keep producing identical rows.
TEST(MemoryBudgetTest, ResubmissionSwitchesBetweenResidentAndSpilled) {
  ProbeTable probe(15'000, 200);
  Query golden = BuildRowOrderBy(probe);
  ASSERT_TRUE(ExecEngine::Execute(golden.context(), Opts(1, kUnlimited)).ok());

  Query q = BuildRowOrderBy(probe);
  for (int round = 0; round < 3; ++round) {
    const uint64_t budget = (round % 2 == 0) ? 48 * 1024 : kUnlimited;
    auto rep = ExecEngine::Execute(q.context(), Opts(1, budget));
    ASSERT_TRUE(rep.ok()) << "round " << round << ": "
                          << rep.status().ToString();
    if (budget != kUnlimited) {
      EXPECT_GT(rep.value().bytes_spilled, 0u) << "round " << round;
    } else {
      EXPECT_EQ(rep.value().bytes_spilled, 0u) << "round " << round;
    }
    ExpectSameColumns(q, golden);
  }
}

}  // namespace
}  // namespace avm::engine
