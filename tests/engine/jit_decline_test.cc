// Decline-regression tests for the selection-aware trace ABI
// (docs/TRACE_ABI.md): the three shape families the JIT used to DECLINE —
// gather/scatter traces, let-bound write counts (condensing-output
// cursors), and iterations whose chunk-var inputs already carry a
// selection — must now compile. Each test pins `ExecReport::jit_declined`
// empty for its shape, checks results against pure interpretation, and
// (when a host compiler exists) requires traces to actually compile AND
// run injected, so a silently-reintroduced decline cannot hide behind the
// interpreter fallback producing correct results.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/query_builder.h"
#include "engine/session.h"
#include "jit/source_jit.h"
#include "util/rng.h"

namespace avm::engine {
namespace {

using dsl::ConstI;
using dsl::Var;

constexpr uint64_t kRows = 20'000;  // ~20 chunks: plenty of post-warmup runs

/// Probe table f_key/f_a/f_b, keys in [0, 600); build table d_key/d_val
/// covering [0, 500).
struct Tables {
  std::unique_ptr<Table> probe;
  std::unique_ptr<Table> build;

  Tables() {
    Schema ps({{"f_key", TypeId::kI64},
               {"f_a", TypeId::kI64},
               {"f_b", TypeId::kI64}});
    probe = std::make_unique<Table>(ps);
    Rng rng(99);
    std::vector<int64_t> k(kRows), a(kRows), b(kRows);
    for (uint64_t i = 0; i < kRows; ++i) {
      k[i] = rng.NextInRange(0, 599);
      a[i] = rng.NextInRange(0, 999);
      b[i] = rng.NextInRange(0, 999);
    }
    EXPECT_TRUE(probe->column(0).AppendValues(k.data(), kRows).ok());
    EXPECT_TRUE(probe->column(1).AppendValues(a.data(), kRows).ok());
    EXPECT_TRUE(probe->column(2).AppendValues(b.data(), kRows).ok());

    Schema bs({{"d_key", TypeId::kI64}, {"d_val", TypeId::kI64}});
    build = std::make_unique<Table>(bs);
    std::vector<int64_t> dk(500), dv(500);
    for (size_t i = 0; i < 500; ++i) {
      dk[i] = static_cast<int64_t>(i);
      dv[i] = rng.NextInRange(1, 400);
    }
    EXPECT_TRUE(build->column(0).AppendValues(dk.data(), 500).ok());
    EXPECT_TRUE(build->column(1).AppendValues(dv.data(), 500).ok());
  }
};

EngineOptions JitSerial() {
  EngineOptions eo;
  eo.strategy = ExecutionStrategy::kAdaptiveJit;
  eo.num_workers = 1;
  eo.vm.optimize_after_iterations = 2;
  return eo;
}

EngineOptions InterpSerial() {
  EngineOptions eo;
  eo.strategy = ExecutionStrategy::kInterpret;
  eo.num_workers = 1;
  return eo;
}

/// Runs `make()`'s query under kAdaptiveJit and asserts the lifted-shape
/// contract: no decline, and (with a host compiler) real compiled-trace
/// executions. Returns the query for result comparison.
template <typename MakeFn>
Query RunJitNoDecline(MakeFn make, const char* shape) {
  Query q = make();
  auto r = ExecEngine::Execute(q.context(), JitSerial());
  EXPECT_TRUE(r.ok()) << shape << ": " << r.status().ToString();
  if (r.ok()) {
    EXPECT_TRUE(r.value().jit_declined.empty())
        << shape << " declined: " << r.value().jit_declined;
    if (jit::SourceJit::Available()) {
      EXPECT_GT(r.value().traces_compiled + r.value().traces_reused +
                    r.value().disk_cache_hits,
                0u)
          << shape << ": nothing compiled";
      EXPECT_GT(r.value().injection_runs, 0u)
          << shape << ": compiled traces never ran";
    }
  }
  return q;
}

// Shape 1: gather/scatter traces. The join probe is a bounds-checked
// shared-array gather, the Sum over the payload re-gathers it, and the
// grouped aggregation scatters into accumulators — all three compile with
// the ABI's in_lens/out_lens bounds checks.
TEST(JitDeclineRegressionTest, GatherScatterTraceCompiles) {
  Tables t;
  auto make = [&] {
    QueryBuilder qb(*t.probe);
    qb.Join(*t.build, "f_key", "d_key", {"d_val"})
        .Aggregate(dsl::Call(dsl::ScalarOp::kMod, {Var("f_b"), ConstI(4)}), 4)
        .Sum("val_sum", Var("d_val"))
        .Count("rows");
    return qb.Build().ValueOrDie();
  };
  Query jit = RunJitNoDecline(make, "gather/scatter");

  Query interp = make();
  ASSERT_TRUE(ExecEngine::Execute(interp.context(), InterpSerial()).ok());
  EXPECT_EQ(jit.aggregate("val_sum"), interp.aggregate("val_sum"));
  EXPECT_EQ(jit.aggregate("rows"), interp.aggregate("rows"));
}

// Shape 2: let-bound write counts. Row materialization writes each
// surviving row at the `onum` cursor and advances it by the write's
// result — the scalar-state slot of the trace ABI.
TEST(JitDeclineRegressionTest, LetBoundWriteCountTraceCompiles) {
  Tables t;
  auto make = [&] {
    QueryBuilder qb(*t.probe);
    qb.Filter(Var("f_a") < ConstI(500))
        .Output("f_key")
        .Output("f_b")
        .OrderBy("f_b", SortDir::kAscending);
    return qb.Build().ValueOrDie();
  };
  Query jit = RunJitNoDecline(make, "let-bound write count");

  Query interp = make();
  ASSERT_TRUE(ExecEngine::Execute(interp.context(), InterpSerial()).ok());
  ASSERT_EQ(jit.num_result_rows(), interp.num_result_rows());
  EXPECT_EQ(jit.result_column("f_key").data, interp.result_column("f_key").data);
  EXPECT_EQ(jit.result_column("f_b").data, interp.result_column("f_b").data);
}

// Shape 3: selection-carrying chunk-var inputs. Post-filter compute reaches
// the trace with values that already carry the filter's selection; the
// selection-specialized variant iterates i = sel[j] and republishes the
// selection on its outputs.
TEST(JitDeclineRegressionTest, SelectionCarryingInputTraceCompiles) {
  Tables t;
  auto make = [&] {
    QueryBuilder qb(*t.probe);
    qb.Filter(Var("f_a") * ConstI(3) < Var("f_b") + ConstI(700))
        .Project("score", Var("f_a") * ConstI(2) + Var("f_b"))
        .Aggregate(dsl::Call(dsl::ScalarOp::kMod, {Var("f_key"), ConstI(8)}), 8)
        .Sum("score_sum", Var("score"))
        .Count("rows");
    return qb.Build().ValueOrDie();
  };
  Query jit = RunJitNoDecline(make, "selection-carrying input");

  Query interp = make();
  ASSERT_TRUE(ExecEngine::Execute(interp.context(), InterpSerial()).ok());
  EXPECT_EQ(jit.aggregate("score_sum"), interp.aggregate("score_sum"));
  EXPECT_EQ(jit.aggregate("rows"), interp.aggregate("rows"));
}

// All three families composed in one plan — the shape ISSUE/ROADMAP name
// as the previously-declined hot path: join payload re-gather + post-filter
// compute + ORDER BY condensing, serial and under a 4-worker session.
TEST(JitDeclineRegressionTest, JoinOrderByPipelineCompilesAndMatches) {
  Tables t;
  auto make = [&] {
    QueryBuilder qb(*t.probe);
    qb.Join(*t.build, "f_key", "d_key", {"d_val"})
        .Filter(Var("f_a") < ConstI(700))
        .Project("gain", Var("d_val") + Var("f_b"))
        .Output("gain")
        .Output("f_key")
        .OrderBy("gain", SortDir::kDescending);
    return qb.Build().ValueOrDie();
  };
  Query jit = RunJitNoDecline(make, "join+orderby pipeline");

  Query interp = make();
  ASSERT_TRUE(ExecEngine::Execute(interp.context(), InterpSerial()).ok());
  ASSERT_EQ(jit.num_result_rows(), interp.num_result_rows());
  EXPECT_EQ(jit.result_column("gain").data, interp.result_column("gain").data);
  EXPECT_EQ(jit.result_column("f_key").data,
            interp.result_column("f_key").data);

  // 4-worker session run of the same plan stays bit-identical.
  SessionOptions so;
  so.num_workers = 4;
  Session session(so);
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kAdaptiveJit;
  qo.vm.optimize_after_iterations = 2;
  Query par = make();
  auto rp = session.Submit(par.context(), qo).Wait();
  ASSERT_TRUE(rp.ok()) << rp.status().ToString();
  EXPECT_TRUE(rp.value().jit_declined.empty())
      << "parallel declined: " << rp.value().jit_declined;
  ASSERT_EQ(par.num_result_rows(), interp.num_result_rows());
  EXPECT_EQ(par.result_column("gain").data, interp.result_column("gain").data);
  EXPECT_EQ(par.result_column("f_key").data,
            interp.result_column("f_key").data);
}

}  // namespace
}  // namespace avm::engine
