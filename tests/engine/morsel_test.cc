#include "engine/morsel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace avm::engine {
namespace {

TEST(PartitionRowsTest, CoversRangeExactlyOnce) {
  for (uint64_t rows : {1ull, 1000ull, 65536ull, 1000000ull}) {
    for (size_t workers : {1u, 3u, 4u, 16u}) {
      auto morsels = PartitionRows(rows, workers, 0, 1024);
      ASSERT_FALSE(morsels.empty());
      uint64_t expect_begin = 0;
      for (const Morsel& m : morsels) {
        EXPECT_EQ(m.begin, expect_begin);
        EXPECT_GT(m.end, m.begin);
        expect_begin = m.end;
      }
      EXPECT_EQ(expect_begin, rows);
    }
  }
}

TEST(PartitionRowsTest, MorselsAreChunkAligned) {
  auto morsels = PartitionRows(1000000, 4, 0, 1024);
  for (size_t i = 0; i + 1 < morsels.size(); ++i) {
    EXPECT_EQ(morsels[i].rows() % 1024, 0u) << "morsel " << i;
  }
}

TEST(PartitionRowsTest, ExplicitMorselSizeHonored) {
  auto morsels = PartitionRows(10000, 2, 4096, 1024);
  ASSERT_EQ(morsels.size(), 3u);
  EXPECT_EQ(morsels[0].rows(), 4096u);
  EXPECT_EQ(morsels[1].rows(), 4096u);
  EXPECT_EQ(morsels[2].rows(), 10000u - 8192u);
}

TEST(PartitionRowsTest, ZeroRowsIsEmpty) {
  EXPECT_TRUE(PartitionRows(0, 4, 0, 1024).empty());
}

TEST(RunMorselsTest, EveryMorselProcessedOnce) {
  ThreadPool pool(4);
  auto morsels = PartitionRows(100000, 4, 1000, 1);
  std::vector<std::atomic<int>> hits(morsels.size());
  Status st = RunMorsels(pool, 4, morsels, [&](const Morsel& m) {
    hits[m.index].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunMorselsTest, FirstErrorPropagates) {
  ThreadPool pool(4);
  auto morsels = PartitionRows(1000, 4, 10, 1);
  Status st = RunMorsels(pool, 4, morsels, [&](const Morsel& m) {
    if (m.index == 42) return Status::Internal("boom");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("boom"), std::string::npos);
}

TEST(RunMorselsTest, SerialFallbackWithOneWorker) {
  ThreadPool pool(2);
  auto morsels = PartitionRows(100, 1, 10, 1);
  std::atomic<uint64_t> total{0};
  Status st = RunMorsels(pool, 1, morsels, [&](const Morsel& m) {
    total.fetch_add(m.rows());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(total.load(), 100u);
}

}  // namespace
}  // namespace avm::engine
