// First-class hash joins + ORDER BY / row materialization on
// engine::QueryBuilder: edge cases (empty build side, duplicate-key
// many-to-many fan-out, negative/sparse/huge key domains, absent probe
// keys, selection-composed probe input), dense-vs-hash path equivalence,
// f64 aggregates, and ordered materialized output — each checked against
// scalar oracles, serially and morsel-parallel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "engine/query_builder.h"
#include "engine/session.h"
#include "util/rng.h"

namespace avm::engine {
namespace {

using dsl::Cast;
using dsl::ConstI;
using dsl::Var;

EngineOptions Interp(size_t workers = 1) {
  EngineOptions opts;
  opts.strategy = ExecutionStrategy::kInterpret;
  opts.num_workers = workers;
  return opts;
}

/// Probe fact table: f_key (join key, may miss the build side, may be
/// negative), f_a, f_b in [0, 999].
struct ProbeTable {
  std::unique_ptr<Table> table;
  std::vector<int64_t> key, a, b;

  explicit ProbeTable(uint64_t n = 60'000, int64_t key_lo = -5,
                      int64_t key_hi = 1'400, uint64_t seed = 7) {
    Schema schema({{"f_key", TypeId::kI64},
                   {"f_a", TypeId::kI64},
                   {"f_b", TypeId::kI64}});
    table = std::make_unique<Table>(schema);
    Rng rng(seed);
    key.resize(n);
    a.resize(n);
    b.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      key[i] = rng.NextInRange(key_lo, key_hi);
      a[i] = rng.NextInRange(0, 999);
      b[i] = rng.NextInRange(0, 999);
    }
    EXPECT_TRUE(table->column(0)
                    .AppendValues(key.data(), static_cast<uint32_t>(n))
                    .ok());
    EXPECT_TRUE(table->column(1)
                    .AppendValues(a.data(), static_cast<uint32_t>(n))
                    .ok());
    EXPECT_TRUE(table->column(2)
                    .AppendValues(b.data(), static_cast<uint32_t>(n))
                    .ok());
  }
};

/// Build/dimension table: d_key plus an i64 payload d_val and an f64
/// payload d_rate.
struct BuildTable {
  std::unique_ptr<Table> table;
  std::vector<int64_t> key, val;
  std::vector<double> rate;

  BuildTable(std::vector<int64_t> keys, uint64_t seed = 11)
      : key(std::move(keys)) {
    Schema schema({{"d_key", TypeId::kI64},
                   {"d_val", TypeId::kI64},
                   {"d_rate", TypeId::kF64}});
    table = std::make_unique<Table>(schema);
    Rng rng(seed);
    const size_t n = key.size();
    val.resize(n);
    rate.resize(n);
    for (size_t i = 0; i < n; ++i) {
      val[i] = rng.NextInRange(1, 500);
      rate[i] = static_cast<double>(rng.NextInRange(1, 1000)) / 8.0;
    }
    if (n > 0) {
      EXPECT_TRUE(table->column(0)
                      .AppendValues(key.data(), static_cast<uint32_t>(n))
                      .ok());
      EXPECT_TRUE(table->column(1)
                      .AppendValues(val.data(), static_cast<uint32_t>(n))
                      .ok());
      EXPECT_TRUE(table->column(2)
                      .AppendValues(rate.data(), static_cast<uint32_t>(n))
                      .ok());
    }
  }

  /// Unique-key lookup (the tests using it have unique build keys; with
  /// duplicates use MatchRows for the many-to-many pair semantics).
  bool Lookup(int64_t k, int64_t* out_val, double* out_rate) const {
    for (size_t i = key.size(); i-- > 0;) {
      if (key[i] == k) {
        *out_val = val[i];
        *out_rate = rate[i];
        return true;
      }
    }
    return false;
  }

  /// All build rows matching `k`, ascending — one output pair per entry.
  std::vector<size_t> MatchRows(int64_t k) const {
    std::vector<size_t> rows;
    for (size_t i = 0; i < key.size(); ++i) {
      if (key[i] == k) rows.push_back(i);
    }
    return rows;
  }
};

std::vector<int64_t> DenseKeys(int64_t n) {
  std::vector<int64_t> keys(static_cast<size_t>(n));
  std::iota(keys.begin(), keys.end(), 0);
  return keys;
}

TEST(JoinBuilderTest, JoinAggregatesMatchScalarOracleSerialAndParallel) {
  ProbeTable probe;
  // Sparse build side: roughly half the probe key domain is present.
  std::vector<int64_t> keys;
  for (int64_t k = 0; k <= 1'400; k += 2) keys.push_back(k);
  BuildTable build(std::move(keys));

  int64_t expect_n = 0, expect_sum = 0;
  for (size_t i = 0; i < probe.key.size(); ++i) {
    if (probe.a[i] >= 300) continue;
    int64_t v;
    double r;
    if (!build.Lookup(probe.key[i], &v, &r)) continue;
    ++expect_n;
    expect_sum += probe.b[i] * v;
  }

  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryBuilder qb(*probe.table);
    qb.Filter(Var("f_a") < ConstI(300))
        .Join(*build.table, "f_key", "d_key", {"d_val"})
        .Sum("sum_bv", Var("f_b") * Var("d_val"))
        .Count("n");
    Query q = qb.Build().ValueOrDie();
    auto rep = ExecEngine::Execute(q.context(), Interp(workers));
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    if (workers > 1) {
      EXPECT_GT(rep.value().morsels, 1u);
      EXPECT_TRUE(rep.value().ran_serial_reason.empty())
          << rep.value().ran_serial_reason;
    }
    EXPECT_EQ(q.aggregate("n")[0], expect_n) << "workers=" << workers;
    EXPECT_EQ(q.aggregate("sum_bv")[0], expect_sum) << "workers=" << workers;
  }
}

TEST(JoinBuilderTest, EmptyBuildSideDropsEveryRow) {
  ProbeTable probe(5'000);
  BuildTable build({});
  QueryBuilder qb(*probe.table);
  qb.Join(*build.table, "f_key", "d_key").Count("n");
  Query q = qb.Build().ValueOrDie();
  ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp(4)).ok());
  EXPECT_EQ(q.aggregate("n")[0], 0);
}

TEST(JoinBuilderTest, EmptyProbeSideProducesEmptyResults) {
  Schema ps({{"f_key", TypeId::kI64}});
  Table empty_probe(ps);  // zero rows
  BuildTable build(DenseKeys(10));
  {
    QueryBuilder qb(empty_probe);
    qb.Join(*build.table, "f_key", "d_key", {"d_val"}).Count("n");
    Query q = qb.Build().ValueOrDie();
    ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp(4)).ok());
    EXPECT_EQ(q.aggregate("n")[0], 0);
  }
  {
    QueryBuilder qb(empty_probe);
    qb.Join(*build.table, "f_key", "d_key", {"d_val"})
        .Output("d_val")
        .OrderBy("f_key");
    Query q = qb.Build().ValueOrDie();
    ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp(4)).ok());
    EXPECT_EQ(q.num_result_rows(), 0u);
    EXPECT_TRUE(q.result_column("d_val").data.empty());
  }
}

TEST(JoinBuilderTest, AllDuplicateBuildKeysFanOutPerBuildRow) {
  ProbeTable probe(5'000, /*key_lo=*/0, /*key_hi=*/10);
  BuildTable build(std::vector<int64_t>(64, 7));  // 64 rows, all key 7
  int64_t hits = 0;
  for (int64_t k : probe.key) hits += k == 7 ? 1 : 0;
  const int64_t val_sum =
      std::accumulate(build.val.begin(), build.val.end(), int64_t{0});
  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryBuilder qb(*probe.table);
    qb.Join(*build.table, "f_key", "d_key", {"d_val"})
        .Sum("sum_v", Var("d_val"))
        .Count("n");
    Query q = qb.Build().ValueOrDie();
    ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp(workers)).ok());
    // One output pair per (probe row, matching build row): every probe hit
    // fans out across all 64 duplicate build rows.
    EXPECT_EQ(q.aggregate("n")[0], hits * 64) << "workers=" << workers;
    EXPECT_EQ(q.aggregate("sum_v")[0], hits * val_sum)
        << "workers=" << workers;
  }
}

TEST(JoinBuilderTest, DuplicateFanOutMatchesScalarOracle) {
  // Mixed duplicate counts (1..6 per key) against a scalar many-to-many
  // oracle, with a pre-join filter so the probe runs under a selection.
  ProbeTable probe(30'000, /*key_lo=*/-3, /*key_hi=*/120);
  Rng rng(23);
  std::vector<int64_t> keys;
  for (int64_t k = 0; k <= 100; ++k) {
    const int64_t copies = rng.NextInRange(1, 6);
    for (int64_t c = 0; c < copies; ++c) keys.push_back(k);
  }
  BuildTable build(std::move(keys));

  int64_t expect_n = 0, expect_sum = 0;
  for (size_t i = 0; i < probe.key.size(); ++i) {
    if (probe.a[i] >= 600) continue;
    for (size_t r : build.MatchRows(probe.key[i])) {
      ++expect_n;
      expect_sum += probe.b[i] * build.val[r];
    }
  }
  ASSERT_GT(expect_n, 0);

  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryBuilder qb(*probe.table);
    qb.Filter(Var("f_a") < ConstI(600))
        .Join(*build.table, "f_key", "d_key", {"d_val"})
        .Sum("s", Var("f_b") * Var("d_val"))
        .Count("n");
    Query q = qb.Build().ValueOrDie();
    auto rep = ExecEngine::Execute(q.context(), Interp(workers));
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    if (workers > 1) {
      EXPECT_GT(rep.value().morsels, 1u);
      EXPECT_TRUE(rep.value().ran_serial_reason.empty())
          << rep.value().ran_serial_reason;
    }
    EXPECT_EQ(q.aggregate("n")[0], expect_n) << "workers=" << workers;
    EXPECT_EQ(q.aggregate("s")[0], expect_sum) << "workers=" << workers;
  }
}

TEST(JoinBuilderTest, NegativeSparseAndHugeBuildKeysJoinViaHashTable) {
  // Keys that the dense path cannot represent — negative, sparse, and far
  // beyond the ~16M dense-domain cap — must Build() and probe correctly.
  const uint64_t n = 8'000;
  Schema ps({{"f_key", TypeId::kI64}, {"f_b", TypeId::kI64}});
  Table probe(ps);
  Rng rng(41);
  std::vector<int64_t> fk(n), fb(n);
  const std::vector<int64_t> domain = {
      -9'000'000'000'000LL, -17, -1, 0, 3, (int64_t{1} << 24) + 5,
      (int64_t{1} << 40),   907, 908};
  for (uint64_t i = 0; i < n; ++i) {
    // Half the probes hit the domain, half miss.
    fk[i] = rng.NextInRange(0, 1) != 0
                ? domain[static_cast<size_t>(
                      rng.NextInRange(0, static_cast<int64_t>(domain.size()) - 1))]
                : rng.NextInRange(100'000, 200'000);
    fb[i] = rng.NextInRange(1, 99);
  }
  ASSERT_TRUE(
      probe.column(0).AppendValues(fk.data(), static_cast<uint32_t>(n)).ok());
  ASSERT_TRUE(
      probe.column(1).AppendValues(fb.data(), static_cast<uint32_t>(n)).ok());

  // Build side: each domain key once, plus a duplicate of the negatives.
  std::vector<int64_t> bk = domain;
  bk.push_back(-17);
  bk.push_back(-1);
  BuildTable build(bk);

  int64_t expect_n = 0, expect_sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    for (size_t r : build.MatchRows(fk[i])) {
      ++expect_n;
      expect_sum += fb[i] * build.val[r];
    }
  }
  ASSERT_GT(expect_n, 0);

  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryBuilder qb(probe);
    qb.Join(*build.table, "f_key", "d_key", {"d_val"})
        .Sum("s", Var("f_b") * Var("d_val"))
        .Count("n");
    Query q = qb.Build().ValueOrDie();
    auto rep = ExecEngine::Execute(q.context(), Interp(workers));
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_EQ(q.aggregate("n")[0], expect_n) << "workers=" << workers;
    EXPECT_EQ(q.aggregate("s")[0], expect_sum) << "workers=" << workers;
  }
}

TEST(JoinBuilderTest, DenseAndHashPathsBitIdentical) {
  // Unique in-domain keys qualify for the dense fast path; forcing the CSR
  // hash table on the same data must give bit-identical aggregates AND
  // bit-identical ordered materialized rows.
  ProbeTable probe(20'000);
  BuildTable build(DenseKeys(1'000));

  auto run = [&](JoinStrategy strategy, size_t workers) {
    QueryBuilder qb(*probe.table);
    qb.SetJoinStrategy(strategy)
        .Filter(Var("f_a") < ConstI(700))
        .Join(*build.table, "f_key", "d_key", {"d_val"})
        .Output("f_b")
        .Output("d_val")
        .OrderBy("f_key");
    Query q = qb.Build().ValueOrDie();
    auto rep = ExecEngine::Execute(q.context(), Interp(workers));
    EXPECT_TRUE(rep.ok()) << rep.status().ToString();
    return q;
  };

  Query dense = run(JoinStrategy::kAuto, 1);
  for (size_t workers : {size_t{1}, size_t{4}}) {
    Query hash = run(JoinStrategy::kHash, workers);
    ASSERT_EQ(hash.num_result_rows(), dense.num_result_rows())
        << "workers=" << workers;
    for (const char* col : {"f_key", "f_b", "d_val"}) {
      EXPECT_EQ(hash.result_column(col).data, dense.result_column(col).data)
          << col << " workers=" << workers;
    }
  }
}

TEST(JoinBuilderTest, DuplicateFanOutOrderedRowsBitIdenticalSerialVsParallel) {
  // Row materialization through a fanning-out join: pairs appear in
  // probe-row order with build-row-ascending ties, for any worker count.
  ProbeTable probe(12'000, /*key_lo=*/-2, /*key_hi=*/60);
  std::vector<int64_t> keys;
  for (int64_t k = 0; k <= 50; ++k) {
    for (int64_t c = 0; c <= k % 4; ++c) keys.push_back(k);
  }
  BuildTable build(std::move(keys));

  auto run = [&](size_t workers) {
    QueryBuilder qb(*probe.table);
    qb.Join(*build.table, "f_key", "d_key", {"d_val"})
        .Output("f_b")
        .Output("d_val")
        .OrderBy("f_key");
    Query q = qb.Build().ValueOrDie();
    auto rep = ExecEngine::Execute(q.context(), Interp(workers));
    EXPECT_TRUE(rep.ok()) << rep.status().ToString();
    return q;
  };

  // Scalar oracle: stable sort by key of the probe-row-major pair list.
  struct Pair {
    int64_t key, b, val;
  };
  std::vector<Pair> oracle;
  for (size_t i = 0; i < probe.key.size(); ++i) {
    for (size_t r : build.MatchRows(probe.key[i])) {
      oracle.push_back({probe.key[i], probe.b[i], build.val[r]});
    }
  }
  std::stable_sort(oracle.begin(), oracle.end(),
                   [](const Pair& x, const Pair& y) { return x.key < y.key; });
  ASSERT_GT(oracle.size(), probe.key.size() / 4);

  Query serial = run(1);
  ASSERT_EQ(serial.num_result_rows(), oracle.size());
  const int64_t* keys_out = serial.result_column("f_key").As<int64_t>();
  const int64_t* b_out = serial.result_column("f_b").As<int64_t>();
  const int64_t* val_out = serial.result_column("d_val").As<int64_t>();
  for (size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(keys_out[i], oracle[i].key) << i;
    ASSERT_EQ(b_out[i], oracle[i].b) << i;
    ASSERT_EQ(val_out[i], oracle[i].val) << i;
  }

  Query parallel = run(4);
  ASSERT_EQ(parallel.num_result_rows(), serial.num_result_rows());
  for (const char* col : {"f_key", "f_b", "d_val"}) {
    EXPECT_EQ(parallel.result_column(col).data, serial.result_column(col).data)
        << col;
  }
}

TEST(JoinBuilderTest, AbsentNegativeAndOutOfDomainProbeKeysAreDropped) {
  // Probe keys range over [-5, 1400]; the build side covers [100, 199], so
  // probes below, above, and inside-but-absent must all just drop (the
  // clamp maps them to the guard slot) — never OutOfRange.
  ProbeTable probe(20'000);
  std::vector<int64_t> keys;
  for (int64_t k = 100; k < 200; ++k) keys.push_back(k);
  BuildTable build(std::move(keys));
  QueryBuilder qb(*probe.table);
  qb.Join(*build.table, "f_key", "d_key", {"d_val"}).Count("n");
  Query q = qb.Build().ValueOrDie();
  auto rep = ExecEngine::Execute(q.context(), Interp(4));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  int64_t expect = 0;
  for (int64_t k : probe.key) expect += (k >= 100 && k < 200) ? 1 : 0;
  EXPECT_EQ(q.aggregate("n")[0], expect);
}

TEST(JoinBuilderTest, SelectionComposedProbeAndPostJoinFilter) {
  // Filter -> Join -> Filter over a payload -> aggregate mixing payload and
  // probe columns: the probe runs under a selection, the payload gathers
  // compose with the post-join filter's refined selection.
  ProbeTable probe;
  BuildTable build(DenseKeys(1'000));

  int64_t expect_n = 0, expect_sum = 0;
  for (size_t i = 0; i < probe.key.size(); ++i) {
    if (probe.a[i] >= 500) continue;
    int64_t v;
    double r;
    if (!build.Lookup(probe.key[i], &v, &r)) continue;
    if (v <= 100) continue;
    ++expect_n;
    expect_sum += probe.b[i] + v;
  }

  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryBuilder qb(*probe.table);
    qb.Filter(Var("f_a") < ConstI(500))
        .Join(*build.table, "f_key", "d_key", {"d_val"})
        .Filter(Var("d_val") > ConstI(100))
        .Sum("s", Var("f_b") + Var("d_val"))
        .Count("n");
    Query q = qb.Build().ValueOrDie();
    auto rep = ExecEngine::Execute(q.context(), Interp(workers));
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_EQ(q.aggregate("n")[0], expect_n) << "workers=" << workers;
    EXPECT_EQ(q.aggregate("s")[0], expect_sum) << "workers=" << workers;
  }
}

TEST(JoinBuilderTest, JoinKeyProjectedAfterFilterWorks) {
  // The probe key is a projection computed AFTER a filter (it carries that
  // filter's selection); the join re-derives it positionally for the
  // lookup-index vector. Every scalar op is total, so this is safe.
  ProbeTable probe;
  BuildTable build(DenseKeys(800));
  int64_t expect_n = 0;
  for (size_t i = 0; i < probe.key.size(); ++i) {
    if (probe.a[i] >= 700) continue;
    const int64_t k2 = probe.key[i] / 2;
    if (k2 >= 0 && k2 < 800) ++expect_n;
  }
  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryBuilder qb(*probe.table);
    qb.Filter(Var("f_a") < ConstI(700))
        .Project("half", Var("f_key") / ConstI(2))
        .Join(*build.table, "half", "d_key")
        .Count("n");
    Query q = qb.Build().ValueOrDie();
    ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp(workers)).ok());
    EXPECT_EQ(q.aggregate("n")[0], expect_n) << "workers=" << workers;
  }
}

TEST(JoinBuilderTest, TwoJoinsSecondKeyedOnFirstJoinsPayload) {
  // Snowflake shape: probe -> build1, then build1's payload is the probe
  // key into build2 (exercises per-join jm_/jp_ bindings and payload
  // re-derivation as a positional join key across two selection changes).
  ProbeTable probe(40'000);
  BuildTable b1(DenseKeys(1'000));  // d_val in [1, 500] keys build2
  Schema s2({{"e_key", TypeId::kI64}, {"e_val", TypeId::kI64}});
  Table b2(s2);
  Rng rng(13);
  std::vector<int64_t> ek, ev;
  for (int64_t k = 0; k <= 400; ++k) {  // covers only part of d_val's range
    ek.push_back(k);
    ev.push_back(rng.NextInRange(1, 99));
  }
  ASSERT_TRUE(b2.column(0)
                  .AppendValues(ek.data(), static_cast<uint32_t>(ek.size()))
                  .ok());
  ASSERT_TRUE(b2.column(1)
                  .AppendValues(ev.data(), static_cast<uint32_t>(ev.size()))
                  .ok());

  int64_t expect_n = 0, expect_sum = 0;
  for (size_t i = 0; i < probe.key.size(); ++i) {
    int64_t v;
    double r;
    if (!b1.Lookup(probe.key[i], &v, &r)) continue;
    if (v < 0 || v > 400) continue;
    ++expect_n;
    expect_sum += probe.a[i] + ev[static_cast<size_t>(v)];
  }

  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryBuilder qb(*probe.table);
    qb.Join(*b1.table, "f_key", "d_key", {"d_val"})
        .Join(b2, "d_val", "e_key", {"e_val"})
        .Sum("s", Var("f_a") + Var("e_val"))
        .Count("n");
    Query q = qb.Build().ValueOrDie();
    auto rep = ExecEngine::Execute(q.context(), Interp(workers));
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_EQ(q.aggregate("n")[0], expect_n) << "workers=" << workers;
    EXPECT_EQ(q.aggregate("s")[0], expect_sum) << "workers=" << workers;
  }
}

TEST(JoinBuilderTest, ValuesAcrossDifferentFiltersStillRejected) {
  // Combining values computed under DIFFERENT filters' selections stays a
  // Build-time error with the join in the pipeline.
  ProbeTable probe(1'000);
  BuildTable build(DenseKeys(100));
  QueryBuilder qb(*probe.table);
  qb.Filter(Var("f_a") < ConstI(500))
      .Project("p", Var("f_b") + ConstI(1))
      .Join(*build.table, "f_key", "d_key", {"d_val"})
      .Sum("s", Var("p") + Var("d_val"));
  auto r = qb.Build();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("filter"), std::string::npos)
      << r.status().ToString();
}

TEST(JoinBuilderTest, BuildSideErrorsSurfaceAtBuild) {
  ProbeTable probe(1'000);
  {
    // Negative build keys are legal now (hash-table path): Build succeeds
    // and the join matches them.
    BuildTable build({3, -2, 5});
    QueryBuilder qb(*probe.table);
    qb.Join(*build.table, "f_key", "d_key").Count("n");
    Query q = qb.Build().ValueOrDie();
    ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp()).ok());
    int64_t expect = 0;
    for (int64_t k : probe.key) {
      expect += (k == 3 || k == -2 || k == 5) ? 1 : 0;
    }
    EXPECT_EQ(q.aggregate("n")[0], expect);
  }
  {
    // Unknown payload column.
    BuildTable build(DenseKeys(10));
    QueryBuilder qb(*probe.table);
    qb.Join(*build.table, "f_key", "d_key", {"nope"}).Count("n");
    EXPECT_FALSE(qb.Build().ok());
  }
  {
    // Payload name colliding with a probe column.
    Schema schema({{"f_a", TypeId::kI64}});
    Table clash(schema);
    std::vector<int64_t> v(8, 1);
    ASSERT_TRUE(clash.column(0).AppendValues(v.data(), 8).ok());
    // Build side whose payload column is named like the probe's own column.
    Schema bschema({{"d_key", TypeId::kI64}, {"f_a", TypeId::kI64}});
    Table bside(bschema);
    ASSERT_TRUE(bside.column(0).AppendValues(v.data(), 8).ok());
    ASSERT_TRUE(bside.column(1).AppendValues(v.data(), 8).ok());
    QueryBuilder qb(clash);
    qb.Join(bside, "f_a", "d_key").Count("n");
    auto r = qb.Build();
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("collides"), std::string::npos);
  }
}

// ------------------------------------------------------ ORDER BY / output

/// Runs a row query and returns (key, payload) result pairs.
struct MaterializedRows {
  std::vector<int64_t> keys;
  std::vector<int64_t> vals;
};

TEST(JoinBuilderTest, OrderedRowsBitIdenticalSerialVsParallel) {
  ProbeTable probe;
  auto build_query = [&] {
    QueryBuilder qb(*probe.table);
    qb.Filter(Var("f_a") < ConstI(400))
        .Project("score", Var("f_b") * ConstI(3) - Var("f_a"))
        .Output("f_key")
        .OrderBy("score", SortDir::kDescending);
    return qb.Build().ValueOrDie();
  };

  // Oracle: stable sort of surviving rows by descending score.
  struct Row {
    int64_t score, key;
    size_t pos;
  };
  std::vector<Row> oracle;
  for (size_t i = 0; i < probe.key.size(); ++i) {
    if (probe.a[i] < 400) {
      oracle.push_back({probe.b[i] * 3 - probe.a[i], probe.key[i], i});
    }
  }
  std::stable_sort(oracle.begin(), oracle.end(),
                   [](const Row& x, const Row& y) { return x.score > y.score; });

  Query serial = build_query();
  ASSERT_TRUE(ExecEngine::Execute(serial.context(), Interp(1)).ok());
  Query parallel = build_query();
  auto rep = ExecEngine::Execute(parallel.context(), Interp(4));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_GT(rep.value().morsels, 1u);
  EXPECT_TRUE(rep.value().ran_serial_reason.empty())
      << rep.value().ran_serial_reason;

  ASSERT_EQ(serial.num_result_rows(), oracle.size());
  ASSERT_EQ(parallel.num_result_rows(), oracle.size());
  const auto& s_score = serial.result_column("score");
  const auto& s_key = serial.result_column("f_key");
  for (size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(s_score.As<int64_t>()[i], oracle[i].score) << "row " << i;
    ASSERT_EQ(s_key.As<int64_t>()[i], oracle[i].key) << "row " << i;
  }
  // Parallel result must be BIT-identical to serial (stable per-morsel
  // sort + run-order-tie-break merge == global stable sort).
  EXPECT_EQ(parallel.result_column("score").data, s_score.data);
  EXPECT_EQ(parallel.result_column("f_key").data, s_key.data);
}

TEST(JoinBuilderTest, UnorderedOutputMaterializesInRowOrder) {
  ProbeTable probe(20'000);
  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryBuilder qb(*probe.table);
    qb.Filter(Var("f_b") < ConstI(250)).Output("f_a").Output("f_b");
    Query q = qb.Build().ValueOrDie();
    ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp(workers)).ok());
    std::vector<int64_t> ea, eb;
    for (size_t i = 0; i < probe.key.size(); ++i) {
      if (probe.b[i] < 250) {
        ea.push_back(probe.a[i]);
        eb.push_back(probe.b[i]);
      }
    }
    ASSERT_EQ(q.num_result_rows(), ea.size()) << "workers=" << workers;
    const auto& ca = q.result_column("f_a");
    const auto& cb = q.result_column("f_b");
    for (size_t i = 0; i < ea.size(); ++i) {
      ASSERT_EQ(ca.As<int64_t>()[i], ea[i]) << "row " << i;
      ASSERT_EQ(cb.As<int64_t>()[i], eb[i]) << "row " << i;
    }
  }
}

TEST(JoinBuilderTest, OrderByF64PayloadRows) {
  // Ordering by a gathered f64 payload: per-row values are bit-exact, so
  // serial and parallel results are bit-identical even for f64 keys.
  ProbeTable probe(30'000);
  BuildTable build(DenseKeys(1'000));
  auto make = [&] {
    QueryBuilder qb(*probe.table);
    qb.Join(*build.table, "f_key", "d_key", {"d_rate"})
        .Output("f_key")
        .OrderBy("d_rate", SortDir::kAscending);
    return qb.Build().ValueOrDie();
  };
  Query serial = make();
  ASSERT_TRUE(ExecEngine::Execute(serial.context(), Interp(1)).ok());
  Query parallel = make();
  ASSERT_TRUE(ExecEngine::Execute(parallel.context(), Interp(4)).ok());
  ASSERT_GT(serial.num_result_rows(), 0u);
  EXPECT_EQ(serial.num_result_rows(), parallel.num_result_rows());
  EXPECT_EQ(serial.result_column("d_rate").data,
            parallel.result_column("d_rate").data);
  EXPECT_EQ(serial.result_column("f_key").data,
            parallel.result_column("f_key").data);
  const auto& rates = serial.result_column("d_rate");
  ASSERT_EQ(rates.type, TypeId::kF64);
  for (uint64_t i = 1; i < serial.num_result_rows(); ++i) {
    ASSERT_LE(rates.As<double>()[i - 1], rates.As<double>()[i]);
  }
}

TEST(JoinBuilderTest, OrderByF64WithNaNsSortsThemLastWithoutUB) {
  // NaN order keys must not hand std::stable_sort an intransitive
  // comparator: the engine's total order puts every NaN after every number.
  const uint64_t n = 10'000;
  Schema schema({{"v", TypeId::kF64}, {"tag", TypeId::kI64}});
  Table t(schema);
  Rng rng(5);
  std::vector<double> v(n);
  std::vector<int64_t> tag(n);
  uint64_t nans = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.NextInRange(0, 9) == 0) {
      v[i] = std::nan("");
      ++nans;
    } else {
      v[i] = static_cast<double>(rng.NextInRange(-1000, 1000)) / 4.0;
    }
    tag[i] = static_cast<int64_t>(i);
  }
  ASSERT_TRUE(
      t.column(0).AppendValues(v.data(), static_cast<uint32_t>(n)).ok());
  ASSERT_TRUE(
      t.column(1).AppendValues(tag.data(), static_cast<uint32_t>(n)).ok());

  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryBuilder qb(t);
    qb.Output("tag").OrderBy("v", SortDir::kAscending);
    Query q = qb.Build().ValueOrDie();
    ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp(workers)).ok());
    ASSERT_EQ(q.num_result_rows(), n);
    const auto* keys = q.result_column("v").As<double>();
    for (uint64_t i = 0; i + 1 < n - nans; ++i) {
      ASSERT_LE(keys[i], keys[i + 1]) << "row " << i;
    }
    for (uint64_t i = n - nans; i < n; ++i) {
      ASSERT_TRUE(std::isnan(keys[i])) << "row " << i;
    }
  }
}

TEST(JoinBuilderTest, GpuOffloadDeclinesRowMaterialization) {
  // A row query can look exactly like an offloadable map fragment; the
  // device path cannot drive the output-count hooks, so kGpuOffload must
  // fall back to the CPU path and still materialize every row.
  const uint64_t n = 200'000;
  Schema schema({{"c", TypeId::kI64}});
  Table t(schema);
  std::vector<int64_t> c(n);
  for (uint64_t i = 0; i < n; ++i) c[i] = static_cast<int64_t>(i % 1000);
  ASSERT_TRUE(
      t.column(0).AppendValues(c.data(), static_cast<uint32_t>(n)).ok());
  QueryBuilder qb(t);
  qb.Project("p", Var("c") * ConstI(3) + ConstI(1)).Output("p");
  Query q = qb.Build().ValueOrDie();
  EngineOptions eo;
  eo.strategy = ExecutionStrategy::kGpuOffload;
  eo.num_workers = 1;
  auto rep = ExecEngine::Execute(q.context(), eo);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep.value().device, "cpu");
  ASSERT_EQ(q.num_result_rows(), n);
  const auto* p = q.result_column("p").As<int64_t>();
  for (uint64_t i = 0; i < n; i += 997) {
    ASSERT_EQ(p[i], static_cast<int64_t>(i % 1000) * 3 + 1) << "row " << i;
  }
}

// --------------------------------------------------------- f64 aggregates

TEST(JoinBuilderTest, SumF64AndAvgF64MatchOracle) {
  ProbeTable probe;
  BuildTable build(DenseKeys(1'000));
  const size_t kGroups = 4;

  std::vector<double> expect_sum(kGroups, 0.0);
  std::vector<int64_t> expect_n(kGroups, 0);
  for (size_t i = 0; i < probe.key.size(); ++i) {
    int64_t v;
    double r;
    if (!build.Lookup(probe.key[i], &v, &r)) continue;
    const size_t g = static_cast<size_t>(probe.a[i] / 250);
    expect_sum[g] += static_cast<double>(probe.b[i]) * r;
    ++expect_n[g];
  }

  for (size_t workers : {size_t{1}, size_t{4}}) {
    QueryBuilder qb(*probe.table);
    qb.Join(*build.table, "f_key", "d_key", {"d_rate"})
        .Aggregate(Var("f_a") / ConstI(250), kGroups)
        .SumF64("wsum", Cast(TypeId::kF64, Var("f_b")) * Var("d_rate"))
        .AvgF64("wavg", Cast(TypeId::kF64, Var("f_b")) * Var("d_rate"))
        .Count("n");
    Query q = qb.Build().ValueOrDie();
    ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp(workers)).ok());
    for (size_t g = 0; g < kGroups; ++g) {
      EXPECT_EQ(q.aggregate("n")[g], expect_n[g]) << "group " << g;
      // f64 addition is order-sensitive; parallel merges reorder it, so
      // compare with a tight relative tolerance instead of bit equality.
      const double tol = 1e-9 * std::abs(expect_sum[g]) + 1e-9;
      EXPECT_NEAR(q.aggregate_f64("wsum")[g], expect_sum[g], tol)
          << "group " << g << " workers " << workers;
      const double avg =
          expect_n[g] != 0 ? expect_sum[g] / expect_n[g] : 0.0;
      EXPECT_NEAR(q.aggregate_f64("wavg")[g], avg, std::abs(avg) * 1e-9 + 1e-9)
          << "group " << g << " workers " << workers;
    }
  }
}

TEST(JoinBuilderTest, GroupedOrderByMaterializesSortedGroupRows) {
  ProbeTable probe;
  const size_t kGroups = 8;
  QueryBuilder qb(*probe.table);
  qb.Aggregate(Var("f_a") / ConstI(125), kGroups)
      .Sum("sum_b", Var("f_b"))
      .Count("n")
      .OrderBy("sum_b", SortDir::kDescending);
  Query q = qb.Build().ValueOrDie();
  ASSERT_TRUE(ExecEngine::Execute(q.context(), Interp(4)).ok());

  std::vector<int64_t> expect_sum(kGroups, 0), expect_n(kGroups, 0);
  for (size_t i = 0; i < probe.key.size(); ++i) {
    expect_sum[static_cast<size_t>(probe.a[i] / 125)] += probe.b[i];
    expect_n[static_cast<size_t>(probe.a[i] / 125)] += 1;
  }
  ASSERT_EQ(q.num_result_rows(), kGroups);
  const auto& groups = q.result_column("group");
  const auto& sums = q.result_column("sum_b");
  const auto& ns = q.result_column("n");
  for (size_t i = 0; i < kGroups; ++i) {
    const auto g = static_cast<size_t>(groups.As<int64_t>()[i]);
    EXPECT_EQ(sums.As<int64_t>()[i], expect_sum[g]);
    EXPECT_EQ(ns.As<int64_t>()[i], expect_n[g]);
    if (i > 0) {
      ASSERT_GE(sums.As<int64_t>()[i - 1], sums.As<int64_t>()[i]);
    }
  }
}

// Acceptance: a join + ORDER BY + AvgF64 query returns correct materialized
// ordered output under 4 concurrent Session clients.
TEST(JoinBuilderTest, JoinOrderByAvgF64Under4ConcurrentSessionClients) {
  ProbeTable probe;
  BuildTable build(DenseKeys(1'000));
  const size_t kGroups = 5;

  std::vector<double> expect_sum(kGroups, 0.0);
  std::vector<int64_t> expect_n(kGroups, 0);
  for (size_t i = 0; i < probe.key.size(); ++i) {
    if (probe.b[i] >= 800) continue;
    int64_t v;
    double r;
    if (!build.Lookup(probe.key[i], &v, &r)) continue;
    const size_t g = static_cast<size_t>(probe.a[i] / 200);
    expect_sum[g] += r;
    ++expect_n[g];
  }
  std::vector<double> expect_avg(kGroups);
  std::vector<size_t> order(kGroups);
  for (size_t g = 0; g < kGroups; ++g) {
    expect_avg[g] = expect_n[g] != 0 ? expect_sum[g] / expect_n[g] : 0.0;
    order[g] = g;
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return expect_avg[x] > expect_avg[y];
  });

  SessionOptions so;
  so.num_workers = 4;
  Session session(so);
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kInterpret;

  constexpr int kClients = 4;
  std::vector<Query> queries;
  for (int c = 0; c < kClients; ++c) {
    QueryBuilder qb(*probe.table);
    qb.Filter(Var("f_b") < ConstI(800))
        .Join(*build.table, "f_key", "d_key", {"d_rate"})
        .Aggregate(Var("f_a") / ConstI(200), kGroups)
        .AvgF64("avg_rate", Var("d_rate"))
        .Count("n")
        .OrderBy("avg_rate", SortDir::kDescending);
    queries.push_back(qb.Build().ValueOrDie());
  }
  std::vector<QueryHandle> handles;
  for (Query& q : queries) handles.push_back(session.Submit(q.context(), qo));
  for (QueryHandle& h : handles) {
    auto r = h.Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  for (Query& q : queries) {
    ASSERT_EQ(q.num_result_rows(), kGroups);
    const auto& groups = q.result_column("group");
    const auto& avgs = q.result_column("avg_rate");
    const auto& ns = q.result_column("n");
    for (size_t i = 0; i < kGroups; ++i) {
      const auto g = static_cast<size_t>(order[i]);
      EXPECT_EQ(groups.As<int64_t>()[i], static_cast<int64_t>(g)) << i;
      EXPECT_EQ(ns.As<int64_t>()[i], expect_n[g]) << i;
      EXPECT_NEAR(avgs.As<double>()[i], expect_avg[g],
                  std::abs(expect_avg[g]) * 1e-9 + 1e-9)
          << i;
    }
  }
}

}  // namespace
}  // namespace avm::engine
