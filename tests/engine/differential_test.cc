// Differential query testing: a seeded random plan generator over
// Scan/Filter/Project/Join/SemiJoin/Aggregate/OrderBy runs every plan under
// kInterpret (serial), kAdaptiveJit (serial), and a 4-worker Session, and
// asserts identical results — BIT-identical for integer aggregates and all
// materialized rows; tight-tolerance for f64 SUM/AVG accumulators, whose
// addition order legitimately differs across morsel merges.
//
// Joins rotate through three build-side families: the near-dense original,
// a duplicate-heavy table (avg fan-out ~4, exercises the many-to-many CSR
// hash path and fan-out row windows), and a sparse table whose keys are
// negative / huge (> 2^24) probed via the probe's own sparse key column.
//
// Every failure message leads with the plan seed and the plan description:
//   AVM_DIFF_SEED=<seed> ./engine_differential_test   reruns just that plan.
//   AVM_DIFF_PLANS=<n>                                overrides the count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/verify_program.h"
#include "dsl/typecheck.h"
#include "engine/query_builder.h"
#include "engine/session.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace avm::engine {
namespace {

using dsl::Call;
using dsl::Cast;
using dsl::ConstI;
using dsl::Eq;
using dsl::ExprPtr;
using dsl::Ne;
using dsl::Var;

constexpr uint64_t kProbeRows = 6'000;
constexpr int64_t kKeyDomain = 600;  // probe keys in [0, 600]
constexpr int64_t kBuildKeys = 500;  // build side covers [0, 500)

/// Join keys the dense fast path cannot represent: negative, sparse, and
/// far beyond the ~16M dense-domain cap. Shared by the probe's k2 column
/// and the sparse build table so roughly half the probes match.
const std::vector<int64_t>& SparseKeyDomain() {
  static const std::vector<int64_t> domain = {
      -(int64_t{1} << 41), -123'456'789LL, -600, -17, -2, -1, 0, 1,
      5,  599, 4'000'000LL, (int64_t{1} << 24) + 3, (int64_t{1} << 33)};
  return domain;
}

/// Shared fixture tables: a probe side (i64 key/a/b, a sparse/negative key
/// k2, an f64 w) and three dimension sides sharing one schema — the
/// near-dense original (dense keys + a small duplicated tail), a
/// duplicate-heavy one (every key 1..7 times, avg fan-out ~4), and a
/// sparse one keyed on SparseKeyDomain() values.
struct Tables {
  std::unique_ptr<Table> probe;
  std::unique_ptr<Table> build;
  std::unique_ptr<Table> build_dup;
  std::unique_ptr<Table> build_sparse;

  void MakeBuild(std::unique_ptr<Table>* out, const std::vector<int64_t>& dk,
                 Rng& rng) {
    Schema bs({{"d_key", TypeId::kI64},
               {"d_val", TypeId::kI64},
               {"d_rate", TypeId::kF64}});
    *out = std::make_unique<Table>(bs);
    const auto n = static_cast<uint32_t>(dk.size());
    std::vector<int64_t> dv(n);
    std::vector<double> dr(n);
    for (uint32_t i = 0; i < n; ++i) {
      dv[i] = rng.NextInRange(1, 400);
      dr[i] = static_cast<double>(rng.NextInRange(1, 999)) / 32.0;
    }
    EXPECT_TRUE((*out)->column(0).AppendValues(dk.data(), n).ok());
    EXPECT_TRUE((*out)->column(1).AppendValues(dv.data(), n).ok());
    EXPECT_TRUE((*out)->column(2).AppendValues(dr.data(), n).ok());
  }

  Tables() {
    Schema ps({{"k", TypeId::kI64},
               {"a", TypeId::kI64},
               {"b", TypeId::kI64},
               {"w", TypeId::kF64},
               {"k2", TypeId::kI64}});
    probe = std::make_unique<Table>(ps);
    Rng rng(2024);
    std::vector<int64_t> k(kProbeRows), a(kProbeRows), b(kProbeRows);
    std::vector<double> w(kProbeRows);
    for (uint64_t i = 0; i < kProbeRows; ++i) {
      k[i] = rng.NextInRange(0, kKeyDomain);
      a[i] = rng.NextInRange(0, 999);
      b[i] = rng.NextInRange(0, 999);
      w[i] = static_cast<double>(rng.NextInRange(-500, 500)) / 16.0;
    }
    EXPECT_TRUE(probe->column(0).AppendValues(k.data(), kProbeRows).ok());
    EXPECT_TRUE(probe->column(1).AppendValues(a.data(), kProbeRows).ok());
    EXPECT_TRUE(probe->column(2).AppendValues(b.data(), kProbeRows).ok());
    EXPECT_TRUE(probe->column(3).AppendValues(w.data(), kProbeRows).ok());

    std::vector<int64_t> dk(static_cast<size_t>(kBuildKeys) + 50);
    for (size_t i = 0; i < dk.size(); ++i) {
      dk[i] = i < static_cast<size_t>(kBuildKeys)
                  ? static_cast<int64_t>(i)
                  : rng.NextInRange(0, kBuildKeys - 1);  // 50 duplicates
    }
    MakeBuild(&build, dk, rng);

    // The new columns/tables draw from a second stream so the original
    // probe/build contents (and thus historical seed behavior) are stable.
    Rng rng2(2025);
    const std::vector<int64_t>& domain = SparseKeyDomain();
    const auto dmax = static_cast<int64_t>(domain.size()) - 1;
    std::vector<int64_t> k2(kProbeRows);
    for (uint64_t i = 0; i < kProbeRows; ++i) {
      // ~60% of probes draw from the sparse domain; the rest miss.
      k2[i] = rng2.NextInRange(0, 99) < 60
                  ? domain[static_cast<size_t>(rng2.NextInRange(0, dmax))]
                  : rng2.NextInRange(1'000'000, 2'000'000);
    }
    EXPECT_TRUE(probe->column(4).AppendValues(k2.data(), kProbeRows).ok());

    std::vector<int64_t> dup_dk;
    for (int64_t key = 0; key <= kKeyDomain; ++key) {
      const int64_t copies = rng2.NextInRange(1, 7);  // avg fan-out 4
      for (int64_t c = 0; c < copies; ++c) dup_dk.push_back(key);
    }
    MakeBuild(&build_dup, dup_dk, rng2);

    std::vector<int64_t> sparse_dk;
    for (int64_t key : domain) {
      const int64_t copies = rng2.NextInRange(1, 3);
      for (int64_t c = 0; c < copies; ++c) sparse_dk.push_back(key);
    }
    for (int64_t i = 0; i < 8; ++i) {  // never probed
      sparse_dk.push_back(3'000'000 + i);
    }
    MakeBuild(&build_sparse, sparse_dk, rng2);
  }
};

/// What the generator decided, so the comparator knows each aggregate's
/// representation and failures reproduce readably.
struct PlanInfo {
  std::string desc;
  bool row_mode = false;
  std::vector<std::pair<std::string, bool>> aggs;  ///< name, is_f64
};

/// Deterministically generates the plan for `seed` onto a fresh builder.
/// Called once per execution config with the same seed, so all three
/// queries are the same plan.
Result<Query> GeneratePlan(uint64_t seed, const Tables& t, PlanInfo* info) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  QueryBuilder qb(*t.probe);
  info->desc.clear();
  info->aggs.clear();

  // Name pools. `fresh` names compose in multi-input expressions (columns
  // always do; join payloads re-gather lazily; projections only until the
  // next selection change). `stale` projections stay usable as single-ref
  // aggregates.
  std::vector<std::string> i64_fresh = {"k", "a", "b"};
  std::vector<std::string> f64_names = {"w"};
  std::vector<std::string> stale;
  int proj_n = 0;
  bool joined = false;

  auto pick = [&](const std::vector<std::string>& pool) {
    return pool[static_cast<size_t>(
        rng.NextInRange(0, static_cast<int64_t>(pool.size()) - 1))];
  };
  auto chance = [&](int pct) { return rng.NextInRange(0, 99) < pct; };

  // Random i64 scalar expression over fresh names; the leftmost leaf is
  // always a name so the expression references at least one column.
  std::function<ExprPtr(int, bool)> rand_expr = [&](int depth,
                                                    bool must_ref) -> ExprPtr {
    if (depth == 0 || (!must_ref && chance(40))) {
      if (must_ref || chance(70)) return Var(pick(i64_fresh));
      return ConstI(rng.NextInRange(1, 100));
    }
    ExprPtr l = rand_expr(depth - 1, must_ref);
    ExprPtr r = rand_expr(depth - 1, false);
    switch (rng.NextInRange(0, 3)) {
      case 0: return l + r;
      case 1: return l - r;
      case 2: return l * r;
      default: return l / r;  // div by zero is a defined 0 in this engine
    }
  };
  auto rand_pred = [&]() -> ExprPtr {
    ExprPtr l = rand_expr(1, true);
    ExprPtr r = chance(60) ? ConstI(rng.NextInRange(0, 900))
                           : rand_expr(1, true);
    switch (rng.NextInRange(0, 5)) {
      case 0: return l < r;
      case 1: return l <= r;
      case 2: return l > r;
      case 3: return l >= r;
      case 4: return Eq(l, r);
      default: return Ne(l, r);
    }
  };
  auto invalidate_projections = [&] {
    // A selection change makes earlier projections single-ref-only.
    for (auto it = i64_fresh.begin(); it != i64_fresh.end();) {
      if (it->rfind("p", 0) == 0) {
        stale.push_back(*it);
        it = i64_fresh.erase(it);
      } else {
        ++it;
      }
    }
  };

  const int steps = static_cast<int>(rng.NextInRange(0, 4));
  for (int s = 0; s < steps; ++s) {
    switch (rng.NextInRange(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Filter
        info->desc += "Filter ";
        qb.Filter(rand_pred());
        invalidate_projections();
        break;
      }
      case 4:
      case 5:
      case 6: {  // Project
        const std::string name = StrFormat("p%d", proj_n++);
        info->desc += "Project(" + name + ") ";
        qb.Project(name, rand_expr(2, true));
        i64_fresh.push_back(name);
        break;
      }
      case 7: {  // SemiJoin on the bounded key column
        info->desc += "SemiJoin ";
        std::vector<int64_t> membership(kKeyDomain + 1);
        for (int64_t& m : membership) m = chance(55) ? 1 : 0;
        qb.SemiJoin("k", std::move(membership));
        invalidate_projections();
        break;
      }
      default: {  // Join (at most one; payload names must stay fresh)
        if (joined) {
          info->desc += "Filter ";
          qb.Filter(rand_pred());
          invalidate_projections();
          break;
        }
        joined = true;
        // The build-side family comes from a side stream (seeded from the
        // plan seed, not the main rng) so adding families did not shift
        // the step sequence of historical/pinned seeds.
        Rng jrng(seed * 0xD1B54A32D192ED03ull + 2);
        switch (jrng.NextInRange(0, 2)) {
          case 0:
            info->desc += "Join ";
            qb.Join(*t.build, "k", "d_key", {"d_val", "d_rate"});
            break;
          case 1:  // duplicate-heavy: many-to-many fan-out (avg ~4)
            info->desc += "JoinDup ";
            qb.Join(*t.build_dup, "k", "d_key", {"d_val", "d_rate"});
            break;
          default:  // sparse / negative / >2^24 keys via the k2 column
            info->desc += "JoinSparse ";
            qb.Join(*t.build_sparse, "k2", "d_key", {"d_val", "d_rate"});
            break;
        }
        invalidate_projections();
        i64_fresh.push_back("d_val");
        f64_names.push_back("d_rate");
        break;
      }
    }
  }

  info->row_mode = chance(50);
  if (info->row_mode) {
    std::vector<std::string> all = i64_fresh;
    all.insert(all.end(), f64_names.begin(), f64_names.end());
    const int outs = static_cast<int>(rng.NextInRange(1, 3));
    std::vector<std::string> chosen;
    for (int o = 0; o < outs; ++o) {
      std::string c = pick(all);
      if (std::find(chosen.begin(), chosen.end(), c) == chosen.end()) {
        chosen.push_back(c);
        info->desc += "Output(" + c + ") ";
        qb.Output(c);
      }
    }
    if (chance(70)) {
      const std::string key = chance(30) ? pick(f64_names) : pick(all);
      const bool desc = chance(50);
      info->desc += StrFormat("OrderBy(%s,%s)", key.c_str(),
                              desc ? "desc" : "asc");
      qb.OrderBy(key, desc ? SortDir::kDescending : SortDir::kAscending);
    }
  } else {
    size_t groups = 1;
    if (chance(60)) {
      groups = static_cast<size_t>(rng.NextInRange(2, 8));
      // ((expr % G) + G) % G keeps any integer expression in-range.
      ExprPtr g = rand_expr(1, true);
      ExprPtr G = ConstI(static_cast<int64_t>(groups));
      g = Call(dsl::ScalarOp::kMod,
               {Call(dsl::ScalarOp::kMod, {std::move(g), G}) + G, G});
      info->desc += StrFormat("Aggregate(%zu) ", groups);
      qb.Aggregate(std::move(g), groups);
    }
    const int naggs = static_cast<int>(rng.NextInRange(1, 3));
    std::vector<std::string> i64_aggs;
    for (int a = 0; a < naggs; ++a) {
      const std::string name = StrFormat("agg%d", a);
      switch (rng.NextInRange(0, 3)) {
        case 0:
          info->desc += "Count ";
          qb.Count(name);
          info->aggs.emplace_back(name, false);
          i64_aggs.push_back(name);
          break;
        case 1: {
          // Single-ref sums may also draw from stale projections.
          if (!stale.empty() && chance(30)) {
            info->desc += "Sum(stale) ";
            qb.Sum(name, Var(pick(stale)));
          } else {
            info->desc += "Sum ";
            qb.Sum(name, rand_expr(2, true));
          }
          info->aggs.emplace_back(name, false);
          i64_aggs.push_back(name);
          break;
        }
        case 2:
          info->desc += "SumF64 ";
          qb.SumF64(name, chance(50)
                              ? Var(pick(f64_names))
                              : Cast(TypeId::kF64, rand_expr(1, true)));
          info->aggs.emplace_back(name, true);
          break;
        default:
          info->desc += "AvgF64 ";
          qb.AvgF64(name, Var(pick(f64_names)));
          info->aggs.emplace_back(name, true);
          break;
      }
    }
    if (chance(40)) {
      // f64 sort keys would make tie order depend on accumulation order;
      // order aggregate rows by "group" or an integer aggregate only.
      std::string key = "group";
      if (!i64_aggs.empty() && chance(60)) key = pick(i64_aggs);
      const bool desc = chance(50);
      info->desc += StrFormat("OrderBy(%s,%s)", key.c_str(),
                              desc ? "desc" : "asc");
      qb.OrderBy(key, desc ? SortDir::kDescending : SortDir::kAscending);
    }
  }
  return qb.Build();
}

void CompareQueries(Query& base, Query& other, const PlanInfo& info,
                    const std::string& label) {
  for (const auto& [name, is_f64] : info.aggs) {
    if (is_f64) {
      const auto& bv = base.aggregate_f64(name);
      const auto& ov = other.aggregate_f64(name);
      ASSERT_EQ(bv.size(), ov.size()) << label;
      for (size_t g = 0; g < bv.size(); ++g) {
        ASSERT_NEAR(ov[g], bv[g], std::abs(bv[g]) * 1e-9 + 1e-9)
            << label << " f64 aggregate " << name << " group " << g;
      }
    } else {
      ASSERT_EQ(other.aggregate(name), base.aggregate(name))
          << label << " aggregate " << name;
    }
  }
  ASSERT_EQ(other.num_result_rows(), base.num_result_rows()) << label;
  const auto& bcols = base.result_columns();
  const auto& ocols = other.result_columns();
  ASSERT_EQ(bcols.size(), ocols.size()) << label;
  for (size_t c = 0; c < bcols.size(); ++c) {
    ASSERT_EQ(ocols[c].name, bcols[c].name) << label;
    ASSERT_EQ(ocols[c].type, bcols[c].type) << label;
    if (IsFloatType(bcols[c].type) && !info.row_mode) {
      // Ordered-aggregate rows: f64 columns carry accumulator values.
      const auto* bd = bcols[c].As<double>();
      const auto* od = ocols[c].As<double>();
      for (uint64_t r = 0; r < base.num_result_rows(); ++r) {
        ASSERT_NEAR(od[r], bd[r], std::abs(bd[r]) * 1e-9 + 1e-9)
            << label << " column " << bcols[c].name << " row " << r;
      }
    } else {
      // Row outputs are per-row computed values: BIT-identical, f64
      // included.
      ASSERT_EQ(ocols[c].data, bcols[c].data)
          << label << " column " << bcols[c].name;
    }
  }
}

/// Smallest memory budget EVERY generated plan can run under: one chunk
/// (1024 rows) of the widest possible scratch window — up to 4 output
/// columns (3 chosen + an appended OrderBy key) x 8 bytes x the
/// duplicate-heavy build side's maximum fan-out of 7. Budgets below a
/// plan's single-morsel window are a deterministic kResourceExhausted
/// (see MemoryBudgetTest), which is not what the differential family
/// exercises.
constexpr uint64_t kViableBudget = 1024ull * 4 * 8 * 7;

/// Runs one seeded plan under all three configs, plus the out-of-core
/// family (the same plan under a side-stream-chosen memory budget), and
/// compares. Increments *built / *skipped accordingly; accumulates spilled
/// bytes into *spilled. Used by the random sweep and by the pinned
/// regression seeds.
void RunSeed(uint64_t seed, Tables& t, Session& parallel_session, int* built,
             int* skipped, uint64_t* spilled) {
  const std::string repro =
      StrFormat("[plan seed %llu: rerun with AVM_DIFF_SEED=%llu] ",
                (unsigned long long)seed, (unsigned long long)seed);

  PlanInfo info;
  Result<Query> base_q = GeneratePlan(seed, t, &info);
  const bool verbose = std::getenv("AVM_DIFF_VERBOSE") != nullptr;
  if (verbose) SetLogLevel(LogLevel::kDebug);
  if (verbose) {
    std::fprintf(stderr, "plan %llu: %s -> %s\n", (unsigned long long)seed,
                 info.desc.c_str(),
                 base_q.ok() ? "built" : base_q.status().ToString().c_str());
  }
  if (!base_q.ok()) {
    // A generated plan the builder rejects (e.g. residual selection
    // conflicts) must be rejected IDENTICALLY on every config.
    PlanInfo i2, i3;
    Result<Query> q2 = GeneratePlan(seed, t, &i2);
    Result<Query> q3 = GeneratePlan(seed, t, &i3);
    ASSERT_FALSE(q2.ok()) << repro << info.desc;
    ASSERT_FALSE(q3.ok()) << repro << info.desc;
    ASSERT_EQ(base_q.status().ToString(), q2.status().ToString())
        << repro << info.desc;
    ++*skipped;
    return;
  }
  ++*built;
  Query base = std::move(base_q.value());

  // Every generated plan's lowered program must be verifier-clean
  // (docs/VERIFIER.md level 1). Build() already enforces this — the direct
  // check keeps the assertion visible even if the facade wiring regresses.
  {
    Result<dsl::Program> prog = base.MakeProgram(4096);
    ASSERT_TRUE(prog.ok()) << repro << info.desc;
    dsl::Program p = std::move(prog).ValueOrDie();
    ASSERT_TRUE(dsl::TypeCheck(&p).ok()) << repro << info.desc;
    const analysis::VerifyResult vr = analysis::VerifyProgram(p);
    ASSERT_TRUE(vr.clean())
        << repro << info.desc << " program verifier: " << vr.ToString();
  }

  // Baseline: serial vectorized interpretation.
  {
    EngineOptions eo;
    eo.strategy = ExecutionStrategy::kInterpret;
    eo.num_workers = 1;
    auto r = ExecEngine::Execute(base.context(), eo);
    ASSERT_TRUE(r.ok()) << repro << info.desc << ": " << r.status().ToString();
    if (verbose) std::fprintf(stderr, "  interp-serial ok\n");
  }

  // Serial adaptive JIT (falls back to interpretation without a host
  // compiler — the comparison holds either way).
  {
    PlanInfo i2;
    Query q = GeneratePlan(seed, t, &i2).ValueOrDie();
    EngineOptions eo;
    eo.strategy = ExecutionStrategy::kAdaptiveJit;
    eo.num_workers = 1;
    eo.vm.optimize_after_iterations = 2;
    auto r = ExecEngine::Execute(q.context(), eo);
    ASSERT_TRUE(r.ok()) << repro << info.desc << ": " << r.status().ToString();
    // Accept ⇔ verifier-clean on every candidate trace this run compiled
    // or declined (the decline-taxonomy contract, docs/VERIFIER.md).
    ASSERT_EQ(r.ValueOrDie().verifier_disagreements, 0u)
        << repro << info.desc
        << " verifier: " << r.ValueOrDie().verifier_diagnostic
        << " jit_declined: " << r.ValueOrDie().jit_declined;
    CompareQueries(base, q, info, repro + info.desc + " [jit-serial]");
    if (verbose) std::fprintf(stderr, "  jit-serial ok\n");
  }

  // 4-worker session, morsel-parallel adaptive JIT.
  {
    PlanInfo i3;
    Query q = GeneratePlan(seed, t, &i3).ValueOrDie();
    QueryOptions qo;
    qo.strategy = ExecutionStrategy::kAdaptiveJit;
    qo.vm.optimize_after_iterations = 2;
    auto r = parallel_session.Submit(q.context(), qo).Wait();
    ASSERT_TRUE(r.ok()) << repro << info.desc << ": " << r.status().ToString();
    ASSERT_EQ(r.ValueOrDie().verifier_disagreements, 0u)
        << repro << info.desc
        << " verifier: " << r.ValueOrDie().verifier_diagnostic;
    CompareQueries(base, q, info, repro + info.desc + " [session-4w]");
  }

  // Out-of-core family: the same plan under a memory budget, serial and on
  // the 4-worker session. The budget tier comes from a SIDE stream (like
  // the join-family choice above) so historical/pinned seeds keep their
  // plans; it rotates through just-viable (many small spilled runs for
  // plans with large windows), mid (one/few runs), and huge (fits — zero
  // runs). Row results must stay BIT-identical either way.
  {
    Rng srng(seed * 0x9E3779B97F4A7C15ull + 3);
    const uint64_t budgets[] = {kViableBudget, 3 * kViableBudget,
                                64ull << 20};
    const uint64_t budget =
        budgets[static_cast<size_t>(srng.NextInRange(0, 2))];
    const std::string blabel =
        StrFormat(" budget=%llu", (unsigned long long)budget);
    {
      PlanInfo i4;
      Query q = GeneratePlan(seed, t, &i4).ValueOrDie();
      EngineOptions eo;
      eo.strategy = ExecutionStrategy::kInterpret;
      eo.num_workers = 1;
      eo.memory_budget = budget;
      auto r = ExecEngine::Execute(q.context(), eo);
      ASSERT_TRUE(r.ok()) << repro << info.desc << blabel << ": "
                          << r.status().ToString();
      *spilled += r.ValueOrDie().bytes_spilled;
      CompareQueries(base, q, info,
                     repro + info.desc + " [spill-serial" + blabel + "]");
      if (verbose) {
        std::fprintf(stderr, "  spill-serial ok (%llu bytes spilled)\n",
                     (unsigned long long)r.ValueOrDie().bytes_spilled);
      }
    }
    {
      PlanInfo i5;
      Query q = GeneratePlan(seed, t, &i5).ValueOrDie();
      QueryOptions qo;
      qo.strategy = ExecutionStrategy::kAdaptiveJit;
      qo.vm.optimize_after_iterations = 2;
      qo.memory_budget = budget;
      auto r = parallel_session.Submit(q.context(), qo).Wait();
      ASSERT_TRUE(r.ok()) << repro << info.desc << blabel << ": "
                          << r.status().ToString();
      *spilled += r.ValueOrDie().bytes_spilled;
      CompareQueries(base, q, info,
                     repro + info.desc + " [spill-session-4w" + blabel + "]");
    }
  }
}

TEST(DifferentialTest, RandomPlansAgreeAcrossStrategiesAndWorkers) {
  Tables t;

  uint64_t first_seed = 1;
  int plans = 200;
  if (const char* s = std::getenv("AVM_DIFF_SEED")) {
    first_seed = std::strtoull(s, nullptr, 10);
    plans = 1;
  }
  if (const char* p = std::getenv("AVM_DIFF_PLANS")) {
    plans = std::atoi(p);
  }

  // One long-lived 4-worker session serves every parallel run — plans
  // interleave with each other's trace-cache entries like production
  // clients would.
  SessionOptions so;
  so.num_workers = 4;
  Session parallel_session(so);

  int built = 0, skipped = 0;
  uint64_t spilled = 0;
  for (int p = 0; p < plans; ++p) {
    RunSeed(first_seed + static_cast<uint64_t>(p), t, parallel_session,
            &built, &skipped, &spilled);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The generator is tuned to produce mostly-buildable plans; if that
  // drifts, the differential coverage silently evaporates — fail loudly
  // instead.
  EXPECT_GE(built, plans * 3 / 4)
      << "generator built only " << built << "/" << plans << " plans";
  // Same guard for the out-of-core family: across a full sweep some plans
  // must actually have taken the spill path, or the budget knob has
  // silently stopped biting.
  if (plans >= 50) {
    EXPECT_GT(spilled, 0u) << "no plan in the sweep spilled a single byte";
  }
  std::printf(
      "differential: %d plans built, %d rejected identically, "
      "%llu bytes spilled\n",
      built, skipped, (unsigned long long)spilled);
}

// Pinned seeds for the shape families the JIT used to decline (and, before
// the declines, MIScompile): these plans compose the stale-cursor shape
// (Filter → Output/OrderBy: a condensing write whose let-bound count
// advances the cursor) and the selection-republish shape (post-filter
// projections/joins whose chunk inputs carry a selection, gathered join
// payloads under that selection). The random sweep above rotates seeds
// only when its generator changes; these never rotate, so the
// selection-aware trace ABI keeps being exercised even if the sweep's
// distribution drifts.
TEST(DifferentialTest, PinnedSeedsForPreviouslyDeclinedShapes) {
  Tables t;
  SessionOptions so;
  so.num_workers = 4;
  Session parallel_session(so);

  // 6:  Filter Project JoinSparse Filter Output OrderBy
  //     (selection-composed join probe over negative/huge keys + payload
  //     re-gather + condensing output cursor)
  // 9:  SemiJoin JoinDup Project Filter Aggregate Sum/Count/SumF64 OrderBy
  //     (selection-carrying scatter aggregation behind two probes, with
  //     duplicate fan-out)
  // 12: Filter Output OrderBy                      (minimal stale-cursor)
  // 20: Filter SemiJoin Join Project Output×3 OrderBy (everything at once)
  // 24: Project JoinDup SemiJoin Filter Output OrderBy (duplicate
  //     fan-out feeding a post-join selection and an ordered, condensing
  //     row materialization — the many-to-many pair-domain shape)
  int built = 0, skipped = 0;
  uint64_t spilled = 0;
  for (uint64_t seed : {6ull, 9ull, 12ull, 20ull, 24ull}) {
    RunSeed(seed, t, parallel_session, &built, &skipped, &spilled);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // All five seeds must BUILD — a generator change that invalidates one
  // must re-pin an equivalent plan, not silently skip the family.
  EXPECT_EQ(built, 5) << "pinned differential seeds no longer build";
}

// Pinned out-of-core seed: a duplicate-fan-out (many-to-many) join feeding
// an ordered row materialization whose windows cannot fit the just-viable
// budget — the canonical spill shape (docs/SPILL.md). Unlike the sweep,
// this seed's spilling is asserted, not sampled: it must write runs to
// disk and still match the unbudgeted baseline byte for byte, serial and
// on the 4-worker session. Pinned independently so the historical seeds
// above keep their plans.
TEST(DifferentialTest, PinnedSpilledManyToManyJoinOrderBy) {
  Tables t;
  // Seed 57: Project(p0) Project(p1) JoinDup Project(p2)
  //          Output(b) Output(d_rate) Output(p2) OrderBy(w,desc)
  // — 4 output columns (OrderBy key appended) x dup fan-out, so the
  // windows are ~32B x fan_out per input row and the just-viable budget
  // always trips.
  constexpr uint64_t kSeed = 57;
  PlanInfo info;
  Query base = GeneratePlan(kSeed, t, &info).ValueOrDie();
  ASSERT_TRUE(info.row_mode) << info.desc;
  ASSERT_NE(info.desc.find("JoinDup"), std::string::npos) << info.desc;
  ASSERT_NE(info.desc.find("OrderBy"), std::string::npos) << info.desc;
  {
    EngineOptions eo;
    eo.strategy = ExecutionStrategy::kInterpret;
    eo.num_workers = 1;
    // Explicitly huge budget (not 0, which would fall back to a CI-forced
    // AVM_MEMORY_BUDGET): the baseline must stay resident even in the
    // spill-stress lane.
    eo.memory_budget = uint64_t{1} << 40;
    auto r = ExecEngine::Execute(base.context(), eo);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r.ValueOrDie().bytes_spilled, 0u);
    ASSERT_GT(base.num_result_rows(), 0u) << info.desc;
  }

  {
    PlanInfo i2;
    Query q = GeneratePlan(kSeed, t, &i2).ValueOrDie();
    EngineOptions eo;
    eo.strategy = ExecutionStrategy::kInterpret;
    eo.num_workers = 1;
    eo.memory_budget = kViableBudget;
    auto r = ExecEngine::Execute(q.context(), eo);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r.ValueOrDie().bytes_spilled, 0u) << info.desc;
    EXPECT_GE(r.ValueOrDie().spill_runs, 2u) << info.desc;
    CompareQueries(base, q, info, info.desc + " [pinned-spill-serial]");
  }
  {
    SessionOptions so;
    so.num_workers = 4;
    Session parallel_session(so);
    PlanInfo i3;
    Query q = GeneratePlan(kSeed, t, &i3).ValueOrDie();
    QueryOptions qo;
    qo.strategy = ExecutionStrategy::kAdaptiveJit;
    qo.vm.optimize_after_iterations = 2;
    qo.memory_budget = kViableBudget;
    auto r = parallel_session.Submit(q.context(), qo).Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r.ValueOrDie().bytes_spilled, 0u) << info.desc;
    CompareQueries(base, q, info, info.desc + " [pinned-spill-session-4w]");
  }
}

}  // namespace
}  // namespace avm::engine
