// Multi-query concurrency on engine::Session: N in-flight queries over M
// shared workers, differentially checked bit-identical against serial
// baselines; admission, cancellation, and single-flight trace compilation
// under contention.
#include "engine/session.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dsl/builder.h"
#include "dsl/typecheck.h"
#include "engine/query_builder.h"
#include "jit/source_jit.h"
#include "relational/join.h"
#include "relational/q1.h"
#include "storage/datagen.h"
#include "util/rng.h"

namespace avm::engine {
namespace {

using relational::HashSetI64;
using relational::MakeQ1Query;
using relational::MakeSemijoinQuery;
using relational::Q1Result;
using relational::Q1ResultFromQuery;
using relational::RunQ1Scalar;
using relational::RunSemijoinScan;

std::unique_ptr<Table> SmallLineitem(uint64_t rows = 120'000) {
  LineitemSpec spec;
  spec.num_rows = rows;
  return MakeLineitem(spec);
}

struct SemijoinFixture {
  std::unique_ptr<Table> probe;
  HashSetI64 f0, f1;
  uint64_t expected = 0;

  explicit SemijoinFixture(uint64_t n = 150'000) {
    Schema schema({{"k0", TypeId::kI64}, {"k1", TypeId::kI64}});
    probe = std::make_unique<Table>(schema);
    Rng rng(41);
    std::vector<int64_t> k0(n), k1(n);
    for (uint64_t i = 0; i < n; ++i) {
      k0[i] = rng.NextInRange(0, 4000);
      k1[i] = rng.NextInRange(0, 4000);
    }
    EXPECT_TRUE(probe->column(0)
                    .AppendValues(k0.data(), static_cast<uint32_t>(n))
                    .ok());
    EXPECT_TRUE(probe->column(1)
                    .AppendValues(k1.data(), static_cast<uint32_t>(n))
                    .ok());
    for (int i = 0; i < 1800; ++i) f0.Insert(rng.NextInRange(0, 4000));
    for (int i = 0; i < 300; ++i) f1.Insert(rng.NextInRange(0, 4000));
    for (uint64_t i = 0; i < n; ++i) {
      if (f0.Contains(k0[i]) && f1.Contains(k1[i])) ++expected;
    }
  }
};

// Acceptance: >= 4 concurrent queries on ONE session over a shared worker
// pool; every handle's result must be bit-identical to its serial baseline.
TEST(SessionTest, ConcurrentMixedQueriesBitIdenticalToSerial) {
  auto lineitem = SmallLineitem();
  SemijoinFixture sj;
  Q1Result oracle = RunQ1Scalar(*lineitem).ValueOrDie();

  SessionOptions so;
  so.num_workers = 4;
  Session session(so);
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kInterpret;

  // 4 Q1 clients + 2 semijoin clients, all in flight at once.
  std::vector<Query> q1s;
  std::vector<Query> sjs;
  for (int c = 0; c < 4; ++c) {
    q1s.push_back(MakeQ1Query(*lineitem).ValueOrDie());
  }
  for (int c = 0; c < 2; ++c) {
    sjs.push_back(
        MakeSemijoinQuery(*sj.probe, {"k0", "k1"}, {&sj.f0, &sj.f1})
            .ValueOrDie());
  }
  std::vector<QueryHandle> handles;
  for (Query& q : q1s) handles.push_back(session.Submit(q.context(), qo));
  for (Query& q : sjs) handles.push_back(session.Submit(q.context(), qo));

  for (QueryHandle& h : handles) {
    auto r = h.Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  for (Query& q : q1s) {
    // Integer aggregates: concurrent morsel interleaving cannot perturb the
    // result — every client must match the scalar oracle exactly.
    EXPECT_EQ(Q1ResultFromQuery(q), oracle);
  }
  for (Query& q : sjs) {
    EXPECT_EQ(static_cast<uint64_t>(q.aggregate("survivors")[0]),
              sj.expected);
  }
  Session::Stats stats = session.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
}

// N independent sessions, each with its own workers and cache, serving
// mixed queries concurrently (clients spread across engines).
TEST(SessionTest, MultipleSessionsServeConcurrently) {
  auto lineitem = SmallLineitem(60'000);
  Q1Result oracle = RunQ1Scalar(*lineitem).ValueOrDie();
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kInterpret;

  constexpr int kSessions = 3;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    SessionOptions so;
    so.num_workers = 2;
    sessions.push_back(std::make_unique<Session>(so));
  }
  std::vector<Query> queries;
  std::vector<QueryHandle> handles;
  for (int s = 0; s < kSessions; ++s) {
    for (int c = 0; c < 2; ++c) {
      queries.push_back(MakeQ1Query(*lineitem).ValueOrDie());
    }
  }
  for (int s = 0; s < kSessions; ++s) {
    for (int c = 0; c < 2; ++c) {
      handles.push_back(
          sessions[s]->Submit(queries[s * 2 + c].context(), qo));
    }
  }
  for (QueryHandle& h : handles) {
    ASSERT_TRUE(h.Wait().ok());
  }
  for (Query& q : queries) {
    EXPECT_EQ(Q1ResultFromQuery(q), oracle);
  }
}

TEST(SessionTest, AdmissionQueueServesEveryQuery) {
  const int64_t n = 80'000;
  DataGen gen(5);
  auto data = gen.UniformI64(n, -50, 50);

  SessionOptions so;
  so.num_workers = 2;
  so.max_active_queries = 1;  // force later submissions through admission
  Session session(so);
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kInterpret;

  constexpr int kQueries = 5;
  std::vector<std::vector<int64_t>> outs(kQueries,
                                         std::vector<int64_t>(n));
  std::vector<std::unique_ptr<ExecContext>> ctxs;
  std::vector<QueryHandle> handles;
  for (int i = 0; i < kQueries; ++i) {
    auto ctx = std::make_unique<ExecContext>(
        [](int64_t rows) -> Result<dsl::Program> {
          return dsl::MakeMapPipeline(
              TypeId::kI64,
              dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(3) +
                                     dsl::ConstI(1)),
              rows);
        },
        n);
    ctx->BindInput("src",
                   interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
    ctx->BindOutput("out", interp::DataBinding::Raw(
                               TypeId::kI64, outs[i].data(), n, true));
    handles.push_back(session.Submit(*ctx, qo));
    ctxs.push_back(std::move(ctx));
  }
  for (QueryHandle& h : handles) {
    auto r = h.Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  for (int i = 0; i < kQueries; ++i) {
    for (int64_t row = 0; row < n; ++row) {
      ASSERT_EQ(outs[i][row], data[row] * 3 + 1)
          << "query " << i << " row " << row;
    }
  }
  EXPECT_EQ(session.stats().completed, static_cast<uint64_t>(kQueries));
}

TEST(SessionTest, CancelPendingQuery) {
  const int64_t n = 2'000'000;
  DataGen gen(9);
  auto data = gen.UniformI64(n, -50, 50);
  std::vector<std::vector<int64_t>> outs(3, std::vector<int64_t>(n));

  SessionOptions so;
  so.num_workers = 1;
  so.max_active_queries = 1;
  Session session(so);
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kInterpret;

  auto make_ctx = [&](int i) {
    auto ctx = std::make_unique<ExecContext>(
        [](int64_t rows) -> Result<dsl::Program> {
          return dsl::MakeMapPipeline(
              TypeId::kI64, dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(2)),
              rows);
        },
        n);
    ctx->BindInput("src",
                   interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
    ctx->BindOutput("out", interp::DataBinding::Raw(
                               TypeId::kI64, outs[i].data(), n, true));
    return ctx;
  };
  auto a = make_ctx(0);
  auto b = make_ctx(1);
  auto c = make_ctx(2);
  QueryHandle ha = session.Submit(*a, qo);
  QueryHandle hb = session.Submit(*b, qo);
  QueryHandle hc = session.Submit(*c, qo);
  // C sits in the admission queue behind two multi-million-row scans on a
  // single worker; cancelling drops it before any of its work runs, and
  // PROMPTLY — its handle must not wait for the active queries to drain.
  hc.Cancel();
  auto rc = hc.Wait();
  ASSERT_FALSE(rc.ok());
  EXPECT_TRUE(rc.status().IsCancelled()) << rc.status().ToString();
  EXPECT_GE(session.stats().cancelled, 1u);

  ASSERT_TRUE(ha.Wait().ok());
  ASSERT_TRUE(hb.Wait().ok());
}

TEST(SessionTest, ShortQueryNotStarvedByLongRunningQuery) {
  // A long serial query must not monopolize scheduling: with spare
  // workers, a short query submitted afterwards completes while the long
  // one is still running (regression test for the pump-spawn accounting
  // that counted busy workers as available).
  // The margin between the two must swamp scheduler noise on a loaded
  // 1-CPU CI box: ~seconds of work vs ~a millisecond.
  const int64_t long_n = 16 << 20;
  const int64_t short_n = 1'000;
  DataGen gen(55);
  auto long_data = gen.UniformI64(long_n, -10, 10);
  auto short_data = gen.UniformI64(short_n, -10, 10);
  std::vector<int64_t> long_out(long_n), short_out(short_n);

  // Deep lambda so the long scan takes hundreds of milliseconds; a fixed
  // program pins it to a single serial task occupying one worker.
  dsl::ExprPtr body = dsl::Var("x");
  for (int d = 0; d < 12; ++d) body = body * dsl::ConstI(3) + dsl::Var("x");
  dsl::Program long_program = dsl::MakeMapPipeline(
      TypeId::kI64, dsl::Lambda({"x"}, std::move(body)), long_n);
  ASSERT_TRUE(dsl::TypeCheck(&long_program).ok());

  ExecContext long_ctx(&long_program);
  long_ctx.BindInput("src", interp::DataBinding::Raw(TypeId::kI64,
                                                     long_data.data(), long_n));
  long_ctx.BindOutput(
      "out", interp::DataBinding::Raw(TypeId::kI64, long_out.data(), long_n,
                                      true));
  ExecContext short_ctx(
      [](int64_t rows) -> Result<dsl::Program> {
        return dsl::MakeMapPipeline(
            TypeId::kI64, dsl::Lambda({"x"}, dsl::Var("x") + dsl::ConstI(1)),
            rows);
      },
      short_n);
  short_ctx.BindInput("src", interp::DataBinding::Raw(
                                 TypeId::kI64, short_data.data(), short_n));
  short_ctx.BindOutput(
      "out", interp::DataBinding::Raw(TypeId::kI64, short_out.data(),
                                      short_n, true));

  Session session({.num_workers = 2});
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kInterpret;
  QueryHandle hlong = session.Submit(long_ctx, qo);
  QueryHandle hshort = session.Submit(short_ctx, qo);
  ASSERT_TRUE(hshort.Wait().ok());
  EXPECT_FALSE(hlong.done())
      << "short query was serialized behind the long one";
  ASSERT_TRUE(hlong.Wait().ok());
  for (int64_t i = 0; i < short_n; ++i) {
    ASSERT_EQ(short_out[i], short_data[i] + 1);
  }
}

TEST(SessionTest, HandleProbesAndEmptyHandle) {
  QueryHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.done());
  EXPECT_FALSE(empty.TryGetReport().has_value());

  const int64_t n = 10'000;
  DataGen gen(3);
  auto data = gen.UniformI64(n, 0, 10);
  std::vector<int64_t> out(n);
  ExecContext ctx(
      [](int64_t rows) -> Result<dsl::Program> {
        return dsl::MakeMapPipeline(
            TypeId::kI64, dsl::Lambda({"x"}, dsl::Var("x") + dsl::ConstI(7)),
            rows);
      },
      n);
  ctx.BindInput("src", interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
  ctx.BindOutput("out",
                 interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
  Session session({.num_workers = 2});
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kInterpret;
  QueryHandle h = session.Submit(ctx, qo);
  ASSERT_TRUE(h.valid());
  ASSERT_TRUE(h.Wait().ok());
  EXPECT_TRUE(h.done());
  auto probed = h.TryGetReport();
  ASSERT_TRUE(probed.has_value());
  EXPECT_TRUE(probed->ok());
  // Wait() again returns the same completed result.
  EXPECT_TRUE(h.Wait().ok());
}

TEST(SessionTest, SubmitErrorSurfacesThroughHandle) {
  // Undersized partitioned binding: classification rejects it; the handle
  // completes immediately with the error instead of hanging.
  const int64_t n = 1000;
  std::vector<int64_t> data(500, 1), out(n);
  ExecContext ctx(
      [](int64_t rows) -> Result<dsl::Program> {
        return dsl::MakeMapPipeline(
            TypeId::kI64, dsl::Lambda({"x"}, dsl::Var("x")), rows);
      },
      n);
  ctx.BindInput("src",
                interp::DataBinding::Raw(TypeId::kI64, data.data(), 500));
  ctx.BindOutput("out",
                 interp::DataBinding::Raw(TypeId::kI64, out.data(), n, true));
  Session session({.num_workers = 4});
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kInterpret;
  QueryHandle h = session.Submit(ctx, qo);
  auto r = h.Wait();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("src"), std::string::npos);
}

// Many same-shape adaptive-JIT queries racing on one cold cache: the
// per-situation single-flight in TraceCache must collapse every concurrent
// miss into ONE host-compiler invocation, with all other workers reusing
// the winner's trace.
TEST(SessionTest, SingleFlightTraceCompilationUnderContention) {
  if (!jit::SourceJit::Available()) {
    GTEST_SKIP() << "no host compiler";
  }
  const int64_t n = 400'000;
  DataGen gen(21);
  auto data = gen.UniformI64(n, -100, 100);

  SessionOptions so;
  so.num_workers = 4;
  Session session(so);
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kAdaptiveJit;
  qo.vm.optimize_after_iterations = 2;

  constexpr int kClients = 4;
  std::vector<std::vector<int64_t>> outs(kClients,
                                         std::vector<int64_t>(n));
  std::vector<std::unique_ptr<ExecContext>> ctxs;
  std::vector<QueryHandle> handles;
  for (int i = 0; i < kClients; ++i) {
    auto ctx = std::make_unique<ExecContext>(
        [](int64_t rows) -> Result<dsl::Program> {
          return dsl::MakeMapPipeline(
              TypeId::kI64,
              dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(5) -
                                     dsl::ConstI(2)),
              rows);
        },
        n);
    ctx->BindInput("src",
                   interp::DataBinding::Raw(TypeId::kI64, data.data(), n));
    ctx->BindOutput("out", interp::DataBinding::Raw(
                               TypeId::kI64, outs[i].data(), n, true));
    handles.push_back(session.Submit(*ctx, qo));
    ctxs.push_back(std::move(ctx));
  }
  uint64_t compiled = 0, reused = 0;
  for (QueryHandle& h : handles) {
    auto r = h.Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    compiled += r.value().traces_compiled + r.value().disk_cache_hits;
    reused += r.value().traces_reused;
  }
  // One program shape, one situation: exactly one compilation total across
  // all clients and all their morsels; everyone else hits the shared cache.
  EXPECT_EQ(compiled, 1u);
  EXPECT_GT(reused, 0u);
  for (int i = 0; i < kClients; ++i) {
    for (int64_t row = 0; row < n; row += 379) {
      ASSERT_EQ(outs[i][row], data[row] * 5 - 2)
          << "client " << i << " row " << row;
    }
  }
}

// Hash-join queries under cancellation + admission back-pressure: a small
// session is saturated with morsel-parallel join probes; some are cancelled
// while parked in the admission queue, some mid-probe. Every handle must
// complete (no deadlocked barrier), surviving queries must produce exact
// results, cancelled ones must be cleanly re-runnable after a reset, and
// the build-side lookup arrays must not leak (they are owned by the Query;
// this test runs under the CI ThreadSanitizer job).
TEST(SessionTest, JoinQueriesUnderCancellationAndBackPressure) {
  const uint64_t n = 400'000;
  Schema pschema({{"f_key", TypeId::kI64}, {"f_v", TypeId::kI64}});
  Table probe(pschema);
  Rng rng(77);
  std::vector<int64_t> fkey(n), fv(n);
  for (uint64_t i = 0; i < n; ++i) {
    fkey[i] = rng.NextInRange(0, 2'000);
    fv[i] = rng.NextInRange(0, 99);
  }
  ASSERT_TRUE(
      probe.column(0).AppendValues(fkey.data(), static_cast<uint32_t>(n)).ok());
  ASSERT_TRUE(
      probe.column(1).AppendValues(fv.data(), static_cast<uint32_t>(n)).ok());

  Schema bschema({{"d_key", TypeId::kI64}, {"d_w", TypeId::kI64}});
  Table build(bschema);
  const uint32_t bn = 1'000;  // build side covers half the probe key domain
  std::vector<int64_t> dkey(bn), dw(bn);
  for (uint32_t i = 0; i < bn; ++i) {
    dkey[i] = i * 2;
    dw[i] = rng.NextInRange(1, 9);
  }
  ASSERT_TRUE(build.column(0).AppendValues(dkey.data(), bn).ok());
  ASSERT_TRUE(build.column(1).AppendValues(dw.data(), bn).ok());

  int64_t expect = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (fkey[i] <= 2'000 - 2 && fkey[i] % 2 == 0) {
      expect += fv[i] * dw[static_cast<size_t>(fkey[i] / 2)];
    }
  }

  auto make_query = [&] {
    QueryBuilder qb(probe);
    qb.Join(build, "f_key", "d_key", {"d_w"})
        .Sum("wsum", dsl::Var("f_v") * dsl::Var("d_w"))
        .Count("matches");
    return qb.Build().ValueOrDie();
  };

  SessionOptions so;
  so.num_workers = 2;
  so.max_active_queries = 2;  // force admission back-pressure
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kInterpret;

  constexpr int kQueries = 6;
  std::vector<Query> queries;
  for (int i = 0; i < kQueries; ++i) queries.push_back(make_query());
  {
    Session session(so);
    std::vector<QueryHandle> handles;
    for (Query& q : queries) handles.push_back(session.Submit(q.context(), qo));
    // Cancel the last three: one parked behind back-pressure (promptly
    // completes Cancelled without waiting for the active probes), two that
    // may be anywhere between admission and mid-probe.
    handles[5].Cancel();
    handles[4].Cancel();
    handles[3].Cancel();
    for (int i = 0; i < kQueries; ++i) {
      auto r = handles[i].Wait();  // every handle completes: no deadlock
      if (i < 3) {
        ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
        EXPECT_EQ(queries[i].aggregate("wsum")[0], expect) << i;
      } else if (!r.ok()) {
        EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
      }
    }
    Session::Stats stats = session.stats();
    EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kQueries));
    EXPECT_EQ(stats.completed, static_cast<uint64_t>(kQueries));
  }  // session drains before the queries (and their build arrays) die

  // A cancelled join query's accumulators are undefined; after a reset it
  // must run again and produce exact results.
  Session session2({.num_workers = 2});
  for (int i = 3; i < kQueries; ++i) {
    queries[i].ResetAggregates();
    auto r = session2.Submit(queries[i].context(), qo).Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(queries[i].aggregate("wsum")[0], expect) << i;
  }
}

// Join builds racing submission from another thread while cancels land:
// Build() densifies the build side on the submitting thread, so a session
// shutting down or cancelling concurrently must never touch a half-built
// query.
TEST(SessionTest, ConcurrentJoinBuildSubmitCancel) {
  const uint64_t n = 150'000;
  Schema pschema({{"f_key", TypeId::kI64}});
  Table probe(pschema);
  Rng rng(99);
  std::vector<int64_t> fkey(n);
  for (uint64_t i = 0; i < n; ++i) fkey[i] = rng.NextInRange(0, 999);
  ASSERT_TRUE(
      probe.column(0).AppendValues(fkey.data(), static_cast<uint32_t>(n)).ok());
  Schema bschema({{"d_key", TypeId::kI64}});
  Table build(bschema);
  std::vector<int64_t> dkey(500);
  for (size_t i = 0; i < dkey.size(); ++i) dkey[i] = static_cast<int64_t>(i);
  ASSERT_TRUE(build.column(0)
                  .AppendValues(dkey.data(),
                                static_cast<uint32_t>(dkey.size()))
                  .ok());
  int64_t expect = 0;
  for (uint64_t i = 0; i < n; ++i) expect += fkey[i] < 500 ? 1 : 0;

  SessionOptions so;
  so.num_workers = 2;
  so.max_active_queries = 1;
  Session session(so);
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kInterpret;

  constexpr int kPerThread = 4;
  std::vector<std::vector<Query>> queries(2);
  std::vector<std::vector<QueryHandle>> handles(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryBuilder qb(probe);
        qb.Join(build, "f_key", "d_key").Count("matches");
        queries[t].push_back(qb.Build().ValueOrDie());
        handles[t].push_back(session.Submit(queries[t].back().context(), qo));
      }
      handles[t].back().Cancel();  // cancel this thread's last submission
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      auto r = handles[t][i].Wait();
      if (r.ok()) {
        EXPECT_EQ(queries[t][i].aggregate("matches")[0], expect);
      } else {
        EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
      }
    }
  }
  EXPECT_EQ(session.stats().completed, static_cast<uint64_t>(2 * kPerThread));
}

// Cost bucketing makes Q1's greedy partition (and so its trace
// fingerprints) stable run-to-run: the second run of the same query shape
// on one session must be served entirely from the cross-run TraceCache.
TEST(SessionTest, Q1RepeatedRunsHitCrossRunTraceCache) {
  if (!jit::SourceJit::Available()) {
    GTEST_SKIP() << "no host compiler";
  }
  auto lineitem = SmallLineitem(200'000);
  Q1Result oracle = RunQ1Scalar(*lineitem).ValueOrDie();

  SessionOptions so;
  so.num_workers = 1;
  Session session(so);
  QueryOptions qo;
  qo.strategy = ExecutionStrategy::kAdaptiveJit;
  qo.vm.optimize_after_iterations = 4;

  Query first = MakeQ1Query(*lineitem).ValueOrDie();
  auto r1 = session.Run(first.context(), qo);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(Q1ResultFromQuery(first), oracle);
  EXPECT_GT(r1.value().traces_compiled + r1.value().disk_cache_hits, 0u);

  Query second = MakeQ1Query(*lineitem).ValueOrDie();
  auto r2 = session.Run(second.context(), qo);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(Q1ResultFromQuery(second), oracle);
  EXPECT_EQ(r2.value().traces_compiled, 0u)
      << "partition drifted between identical runs";
  EXPECT_GT(r2.value().traces_reused, 0u);
}

}  // namespace
}  // namespace avm::engine
