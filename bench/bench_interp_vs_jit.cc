// E10 — vectorized interpretation vs compiled execution across chunk sizes
// (§III-A): interpretation approaches compiled speed for cache-resident
// chunks of simple work (per-op dispatch amortized over the vector), but
// pays materialization per primitive; tiny chunks re-expose interpretation
// overhead, huge chunks spill intermediates out of cache.
#include <benchmark/benchmark.h>

#include "dsl/builder.h"
#include "dsl/typecheck.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"
#include "vm/adaptive_vm.h"

namespace {

using namespace avm;
using interp::DataBinding;

constexpr int64_t kRows = 1 << 21;

void RunPipeline(benchmark::State& state, bool jit, uint32_t chunk) {
  dsl::Program p = dsl::MakeMapPipeline(
      TypeId::kI64,
      dsl::Lambda({"x"}, (dsl::Var("x") * dsl::ConstI(3) + dsl::ConstI(7)) *
                             dsl::Var("x")),
      kRows);
  dsl::TypeCheck(&p).Abort();
  DataGen gen(41);
  auto data = gen.UniformI64(kRows, -100, 100);
  std::vector<int64_t> out(kRows);
  for (auto _ : state) {
    vm::VmOptions opts;
    opts.enable_jit = jit;
    opts.interp.chunk_size = chunk;
    opts.optimize_after_iterations = 2;
    vm::AdaptiveVm vmach(&p, opts);
    vmach.interpreter()
        .BindData("src", DataBinding::Raw(TypeId::kI64, data.data(), kRows))
        .Abort();
    vmach.interpreter()
        .BindData("out",
                  DataBinding::Raw(TypeId::kI64, out.data(), kRows, true))
        .Abort();
    vmach.Run().Abort();
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(kRows) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_ChunkSweep_Interpreted(benchmark::State& state) {
  RunPipeline(state, false, static_cast<uint32_t>(state.range(0)));
}
BENCHMARK(BM_ChunkSweep_Interpreted)
    ->Arg(128)->Arg(512)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_ChunkSweep_Jit(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  RunPipeline(state, true, static_cast<uint32_t>(state.range(0)));
}
BENCHMARK(BM_ChunkSweep_Jit)
    ->Arg(128)->Arg(512)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace
