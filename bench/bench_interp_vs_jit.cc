// E10 — vectorized interpretation vs compiled execution across chunk sizes
// (§III-A): interpretation approaches compiled speed for cache-resident
// chunks of simple work (per-op dispatch amortized over the vector), but
// pays materialization per primitive; tiny chunks re-expose interpretation
// overhead, huge chunks spill intermediates out of cache.
//
// Both variants run through the ExecEngine facade; only the strategy
// differs.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dsl/builder.h"
#include "engine/exec_engine.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"

namespace {

using namespace avm;
using interp::DataBinding;

constexpr int64_t kRows = 1 << 21;

void RunPipeline(benchmark::State& state, bool jit, uint32_t chunk) {
  DataGen gen(41);
  auto data = gen.UniformI64(kRows, -100, 100);
  std::vector<int64_t> out(kRows);
  engine::EngineOptions opts;
  opts.strategy = jit ? engine::ExecutionStrategy::kAdaptiveJit
                      : engine::ExecutionStrategy::kInterpret;
  opts.vm.interp.chunk_size = chunk;
  opts.vm.optimize_after_iterations = 2;
  for (auto _ : state) {
    engine::ExecContext ctx(
        [](int64_t rows) -> Result<dsl::Program> {
          return dsl::MakeMapPipeline(
              TypeId::kI64,
              dsl::Lambda({"x"},
                          (dsl::Var("x") * dsl::ConstI(3) + dsl::ConstI(7)) *
                              dsl::Var("x")),
              rows);
        },
        kRows);
    ctx.BindInput("src", DataBinding::Raw(TypeId::kI64, data.data(), kRows));
    ctx.BindOutput("out",
                   DataBinding::Raw(TypeId::kI64, out.data(), kRows, true));
    auto r = engine::ExecEngine::Execute(ctx, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  benchutil::ReportTuples(state, kRows,
                          jit ? "engine-adaptive-jit" : "engine-interpret");
}

void BM_ChunkSweep_Interpreted(benchmark::State& state) {
  RunPipeline(state, false, static_cast<uint32_t>(state.range(0)));
}
BENCHMARK(BM_ChunkSweep_Interpreted)
    ->Arg(128)->Arg(512)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ChunkSweep_Jit(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  RunPipeline(state, true, static_cast<uint32_t>(state.range(0)));
}
BENCHMARK(BM_ChunkSweep_Jit)
    ->Arg(128)->Arg(512)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
