// First-query latency of a COLD process (empty trace-cache dir: every hot
// trace pays a real compile) vs a WARM process (dir populated by a previous
// process: machine code loads from disk, zero compiles) — the payoff the
// persistent DiskTraceCache exists for.
//
// Each measured iteration re-executes this binary via /proc/self/exe with
// AVM_BENCH_CHILD set (the bench_util.h hook): the child builds its data,
// runs ONE adaptive-JIT query against AVM_TRACE_CACHE_DIR, and exits. A
// subprocess is the honest way to measure this — in-process "restarts"
// would hit the process-global backend memo and ArtifactLoader, making cold
// runs free after the first. Queries: the TPC-H Q1 analogue and a
// join + ORDER BY; a third row pins the fast (-O0) tier only.
//
// In-process rows (first_query_inproc) additionally attach the ReportJit
// counters, so BENCH_results.json records per-tier compiles and disk-cache
// traffic next to the latency.
#include <benchmark/benchmark.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "engine/exec_engine.h"
#include "engine/query_builder.h"
#include "jit/disk_cache.h"
#include "jit/source_jit.h"
#include "relational/q1.h"
#include "storage/datagen.h"
#include "util/rng.h"

namespace {

using namespace avm;
using benchutil::ReportJit;
using benchutil::ReportTuples;

constexpr uint64_t kQ1Rows = 240'000;
constexpr uint64_t kProbeRows = 200'000;
constexpr int64_t kBuildKeys = 1'024;

engine::EngineOptions JitOptions() {
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kAdaptiveJit;
  opts.vm.optimize_after_iterations = 2;
  return opts;
}

Status RunQ1Once() {
  LineitemSpec spec;
  spec.num_rows = kQ1Rows;
  std::unique_ptr<Table> table = MakeLineitem(spec);
  return relational::RunQ1Engine(*table, JitOptions()).status();
}

/// filter -> hash join -> aggregate+ORDER BY row query, the PR 3 shape.
Status RunJoinOrderByOnce() {
  Schema probe_schema({{"f_key", TypeId::kI64}, {"f_val", TypeId::kI64}});
  Table probe(probe_schema);
  Schema build_schema({{"d_key", TypeId::kI64}, {"d_val", TypeId::kI64}});
  Table build(build_schema);
  {
    Rng rng(71);
    std::vector<int64_t> key(kProbeRows), val(kProbeRows);
    for (uint64_t i = 0; i < kProbeRows; ++i) {
      key[i] = rng.NextInRange(0, 2 * kBuildKeys - 1);  // ~50% hit rate
      val[i] = rng.NextInRange(-1000, 1000);
    }
    AVM_RETURN_NOT_OK(probe.column(0).AppendValues(
        key.data(), static_cast<uint32_t>(kProbeRows)));
    AVM_RETURN_NOT_OK(probe.column(1).AppendValues(
        val.data(), static_cast<uint32_t>(kProbeRows)));
    std::vector<int64_t> dkey(kBuildKeys), dval(kBuildKeys);
    for (int64_t i = 0; i < kBuildKeys; ++i) {
      dkey[i] = i;
      dval[i] = i * 3 + 1;
    }
    AVM_RETURN_NOT_OK(build.column(0).AppendValues(
        dkey.data(), static_cast<uint32_t>(kBuildKeys)));
    AVM_RETURN_NOT_OK(build.column(1).AppendValues(
        dval.data(), static_cast<uint32_t>(kBuildKeys)));
  }
  engine::QueryBuilder qb(probe);
  qb.Filter(dsl::Var("f_val") > dsl::ConstI(-500))
      .Join(build, "f_key", "d_key", {"d_val"})
      .Output("d_val")
      .OrderBy("f_key");
  AVM_ASSIGN_OR_RETURN(engine::Query q, qb.Build());
  return engine::ExecEngine::Execute(q.context(), JitOptions()).status();
}

std::string SelfPath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

std::string MakeCacheDir() {
  char tmpl[] = "/tmp/avm_bench_warm_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  return dir != nullptr ? dir : "";
}

void WipeCacheDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    std::remove((dir + "/" + name).c_str());
  }
  ::closedir(d);
}

/// Spawn one child process running `task` against `dir`. Returns the
/// child's exit status (0 = query succeeded).
int RunChild(const std::string& dir, const char* task, const char* tier) {
  std::string cmd = "AVM_TRACE_CACHE_DIR='" + dir + "' AVM_BENCH_CHILD=" +
                    task;
  if (tier != nullptr) cmd += std::string(" AVM_JIT_TIER=") + tier;
  cmd += " '" + SelfPath() + "' > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

/// Core loop shared by every cold/warm row: `warm` decides whether the
/// cache dir is wiped before each iteration or pre-populated once.
void RunProcessBench(benchmark::State& state, const char* task,
                     uint64_t tuples, bool warm, const char* tier,
                     const char* label) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  const std::string dir = MakeCacheDir();
  if (dir.empty()) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  if (warm && RunChild(dir, task, tier) != 0) {
    state.SkipWithError("priming child run failed");
    return;
  }
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      WipeCacheDir(dir);
      state.ResumeTiming();
    }
    if (RunChild(dir, task, tier) != 0) {
      state.SkipWithError("child run failed");
      return;
    }
  }
  WipeCacheDir(dir);
  ::rmdir(dir.c_str());
  ReportTuples(state, tuples, label);
}

void BM_FirstQuery_Q1(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  RunProcessBench(state, "q1", kQ1Rows, warm, nullptr,
                  warm ? "warm-process" : "cold-process");
}
BENCHMARK(BM_FirstQuery_Q1)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_FirstQuery_JoinOrderBy(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  RunProcessBench(state, "join", kProbeRows, warm, nullptr,
                  warm ? "warm-process" : "cold-process");
}
BENCHMARK(BM_FirstQuery_JoinOrderBy)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_FirstQuery_Q1_FastTierOnly(benchmark::State& state) {
  // The -O0 tier only: how much first-execution latency the cheap tier
  // shaves off a cold process relative to the optimized-compile row above.
  RunProcessBench(state, "q1", kQ1Rows, /*warm=*/false, "fast",
                  "cold-process-o0");
}
BENCHMARK(BM_FirstQuery_Q1_FastTierOnly)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_FirstQuery_Q1_InProcess(benchmark::State& state) {
  // In-process companion row: a fresh engine per iteration over one shared
  // populated dir, with the ReportJit counters attached so the JSON row
  // records compiles vs disk hits. (Backend memoization makes repeated
  // in-process "cold" runs free, hence cold has no in-process row.)
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  const std::string dir = MakeCacheDir();
  LineitemSpec spec;
  spec.num_rows = kQ1Rows;
  std::unique_ptr<Table> table = MakeLineitem(spec);
  engine::EngineOptions opts = JitOptions();
  opts.vm.disk_cache = std::make_shared<jit::DiskTraceCache>(dir, 64 << 20);
  {
    auto prime = relational::RunQ1Engine(*table, opts);
    if (!prime.ok()) {
      state.SkipWithError(prime.status().ToString().c_str());
      return;
    }
  }
  engine::ExecReport last;
  for (auto _ : state) {
    auto r = relational::RunQ1Engine(*table, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last = r.value().report;
  }
  WipeCacheDir(dir);
  ::rmdir(dir.c_str());
  ReportTuples(state, kQ1Rows, "warm-inproc");
  ReportJit(state, last);
}
BENCHMARK(BM_FirstQuery_Q1_InProcess)->Unit(benchmark::kMillisecond);

}  // namespace

extern "C" int avm_bench_child_main(const char* task) {
  const std::string t = task;
  Status st = t == "join" ? RunJoinOrderByOnce()
                          : RunQ1Once();
  if (!st.ok()) {
    std::fprintf(stderr, "bench child %s: %s\n", task, st.ToString().c_str());
    return 1;
  }
  return 0;
}
