// E8 — adaptive device placement on heterogeneous hardware (Plan step 3).
//
// A streaming map+reduce fragment across data sizes. CPU time is measured;
// GPU time is the simulated device clock (DESIGN.md substitution). Expected
// shape: CPU wins small sizes (launch+PCIe dominate), the simulated GPU
// wins large resident data, and the adaptive placer picks each side of the
// crossover correctly — by a growing margin once columns stay resident.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "gpu/gpu_backend.h"
#include "gpu/placement.h"
#include "interp/kernels.h"
#include "storage/datagen.h"
#include "util/timer.h"

namespace {

using namespace avm;
using gpu::Device;
using gpu::FragmentProfile;

std::vector<int64_t> MakeColumn(uint32_t n) {
  DataGen gen(31);
  return gen.UniformI64(n, -1000, 1000);
}

// The fragment: out = sum(x * 3 + 7 for x in column).
double RunCpu(const std::vector<int64_t>& col) {
  const auto& reg = interp::KernelRegistry::Get();
  static std::vector<int64_t> tmp;
  tmp.resize(col.size());
  const int64_t three = 3, seven = 7;
  auto mul = reg.Binary(dsl::ScalarOp::kMul, TypeId::kI64,
                        interp::OperandMode::kVecScalar, false);
  auto add = reg.Binary(dsl::ScalarOp::kAdd, TypeId::kI64,
                        interp::OperandMode::kVecScalar, false);
  auto fold = reg.Fold(dsl::ScalarOp::kAdd, TypeId::kI64);
  mul(col.data(), &three, tmp.data(), nullptr,
      static_cast<uint32_t>(col.size()));
  add(tmp.data(), &seven, tmp.data(), nullptr,
      static_cast<uint32_t>(col.size()));
  int64_t acc = 0;
  fold(tmp.data(), nullptr, static_cast<uint32_t>(col.size()), &acc);
  return static_cast<double>(acc);
}

ir::PrimProgram MapProgram() {
  ir::PrimProgram prog;
  prog.input_types = {TypeId::kI64};
  ir::PrimInstr mul;
  mul.op = dsl::ScalarOp::kMul;
  mul.in_type = mul.out_type = TypeId::kI64;
  mul.num_args = 2;
  mul.args[0] = ir::PrimArg::Input(0, TypeId::kI64);
  mul.args[1] = ir::PrimArg::ConstI(3, TypeId::kI64);
  mul.out_reg = 0;
  ir::PrimInstr add = mul;
  add.op = dsl::ScalarOp::kAdd;
  add.args[0] = ir::PrimArg::Reg(0, TypeId::kI64);
  add.args[1] = ir::PrimArg::ConstI(7, TypeId::kI64);
  add.out_reg = 1;
  prog.instrs = {mul, add};
  prog.num_regs = 2;
  prog.result_reg = 1;
  prog.result_type = TypeId::kI64;
  return prog;
}

void BM_Fragment_Cpu(benchmark::State& state) {
  auto col = MakeColumn(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(RunCpu(col));
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(col.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fragment_Cpu)
    ->Arg(64 << 10)->Arg(1 << 20)->Arg(16 << 20)
    ->Unit(benchmark::kMillisecond);

// Simulated GPU run; reported metric is the *simulated* seconds per run
// (cold = includes transfer, warm = column resident).
void BM_Fragment_SimGpu(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  auto col = MakeColumn(n);
  gpu::SimGpuDevice dev(gpu::GpuDeviceParams{}, &ThreadPool::Global());
  gpu::GpuBackend backend(&dev);
  ir::PrimProgram prog = MapProgram();
  double cold_s = 0, warm_s = 0;
  for (auto _ : state) {
    dev.ResetClock();
    auto buf = backend.EnsureResident(col.data(), n * 8).ValueOrDie();
    auto mapped =
        backend.RunMap(prog, {buf}, {TypeId::kI64}, n).ValueOrDie();
    benchmark::DoNotOptimize(
        backend.RunSumF64(mapped, TypeId::kI64, n).ValueOrDie());
    dev.Free(mapped).Abort();
    cold_s = dev.clock_seconds();
    // Warm repeat: resident column.
    dev.ResetClock();
    auto mapped2 =
        backend.RunMap(prog, {buf}, {TypeId::kI64}, n).ValueOrDie();
    benchmark::DoNotOptimize(
        backend.RunSumF64(mapped2, TypeId::kI64, n).ValueOrDie());
    dev.Free(mapped2).Abort();
    warm_s = dev.clock_seconds();
    backend.Evict(col.data()).Abort();
  }
  state.counters["sim_cold_ms"] = cold_s * 1e3;
  state.counters["sim_warm_ms"] = warm_s * 1e3;
}
BENCHMARK(BM_Fragment_SimGpu)
    ->Arg(64 << 10)->Arg(1 << 20)->Arg(16 << 20)
    ->Unit(benchmark::kMillisecond);

// Adaptive placement: at each size, the placer decides; we verify against
// the measured CPU time and simulated GPU time and report which device it
// picked plus the regret vs the oracle.
void BM_Fragment_AdaptivePlacement(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  auto col = MakeColumn(n);
  gpu::GpuDeviceParams params;
  gpu::AdaptivePlacer placer(params);
  gpu::SimGpuDevice dev(params, &ThreadPool::Global());
  gpu::GpuBackend backend(&dev);
  ir::PrimProgram prog = MapProgram();

  FragmentProfile profile;
  profile.rows = n;
  profile.bytes_in = static_cast<size_t>(n) * 8;
  profile.bytes_out = 8;
  profile.ops_per_row = 3;

  int chosen_gpu = 0;
  for (auto _ : state) {
    auto decision = placer.Decide(profile);
    if (decision.device == Device::kGpu) {
      ++chosen_gpu;
      dev.ResetClock();
      auto buf = backend.EnsureResident(col.data(), n * 8).ValueOrDie();
      auto mapped =
          backend.RunMap(prog, {buf}, {TypeId::kI64}, n).ValueOrDie();
      benchmark::DoNotOptimize(
          backend.RunSumF64(mapped, TypeId::kI64, n).ValueOrDie());
      dev.Free(mapped).Abort();
      placer.Observe(Device::kGpu, profile, dev.clock_seconds());
      profile.inputs_resident = true;  // stays on device afterwards
    } else {
      Stopwatch sw;
      benchmark::DoNotOptimize(RunCpu(col));
      placer.Observe(Device::kCpu, profile, sw.ElapsedSeconds());
    }
  }
  auto final_decision = placer.Decide(profile);
  state.counters["picked_gpu_frac"] =
      static_cast<double>(chosen_gpu) / state.iterations();
  state.counters["est_cpu_ms"] = final_decision.est_cpu_s * 1e3;
  state.counters["est_gpu_ms"] = final_decision.est_gpu_s * 1e3;
}
BENCHMARK(BM_Fragment_AdaptivePlacement)
    ->Arg(64 << 10)->Arg(1 << 20)->Arg(16 << 20)->Arg(64 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
