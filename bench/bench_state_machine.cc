// F1 — the Fig. 1 state machine in action, and the cost of adaptivity.
//
// Measures the pure-interpretation baseline against the adaptive VM with
// profiling + heartbeat but JIT disabled (observation overhead must be a
// few percent), and prints one state-machine timeline for documentation.
//
// NOTE: this microbench deliberately constructs AdaptiveVm below the
// ExecEngine facade — it measures VM internals (state machine, partitioner)
// the facade intentionally hides. Application-level code goes through
// engine::ExecEngine.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "analysis/verify_program.h"
#include "dsl/builder.h"
#include "dsl/typecheck.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"
#include "vm/adaptive_vm.h"

namespace {

using namespace avm;
using interp::DataBinding;

constexpr int64_t kN = 1 << 20;

struct Fig2Fixture {
  dsl::Program program = dsl::MakeFigure2Program(kN);
  std::vector<int64_t> data, v, w;
  Fig2Fixture() {
    dsl::TypeCheck(&program).Abort();
    // Below-facade construction: give it the same gate QueryBuilder-built
    // programs get (docs/VERIFIER.md).
    const analysis::VerifyResult vr = analysis::VerifyProgram(program);
    if (!vr.clean()) {
      std::fprintf(stderr, "verifier: %s\n", vr.ToString().c_str());
      std::abort();
    }
    DataGen gen(51);
    data = gen.UniformI64(kN, -100, 100);
    v.assign(kN, 0);
    w.assign(kN, 0);
  }
  void Bind(interp::Interpreter& in) {
    in.BindData("some_data", DataBinding::Raw(TypeId::kI64, data.data(), kN))
        .Abort();
    in.BindData("v", DataBinding::Raw(TypeId::kI64, v.data(), kN, true))
        .Abort();
    in.BindData("w", DataBinding::Raw(TypeId::kI64, w.data(), kN, true))
        .Abort();
  }
};

Fig2Fixture& Fixture() {
  static Fig2Fixture* f = new Fig2Fixture();
  return *f;
}

void BM_StateMachine_NoProfiling(benchmark::State& state) {
  vm::VmOptions opts;
  opts.enable_jit = false;
  opts.interp.enable_profiling = false;
  for (auto _ : state) {
    vm::AdaptiveVm vmach(&Fixture().program, opts);
    Fixture().Bind(vmach.interpreter());
    vmach.Run().Abort();
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(kN) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StateMachine_NoProfiling)->Unit(benchmark::kMillisecond);

void BM_StateMachine_ProfiledInterpret(benchmark::State& state) {
  vm::VmOptions opts;
  opts.enable_jit = false;
  opts.interp.enable_profiling = true;
  for (auto _ : state) {
    vm::AdaptiveVm vmach(&Fixture().program, opts);
    Fixture().Bind(vmach.interpreter());
    vmach.Run().Abort();
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(kN) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StateMachine_ProfiledInterpret)->Unit(benchmark::kMillisecond);

void BM_StateMachine_FullAdaptiveCycle(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  vm::VmOptions opts;
  opts.optimize_after_iterations = 8;
  std::string timeline;
  for (auto _ : state) {
    vm::AdaptiveVm vmach(&Fixture().program, opts);
    Fixture().Bind(vmach.interpreter());
    vmach.Run().Abort();
    timeline = vmach.Report().state_timeline;
  }
  // Print the Fig. 1 timeline once (documentation artifact).
  static bool printed = false;
  if (!printed && !timeline.empty()) {
    printed = true;
    std::fprintf(stderr, "--- Fig.1 state machine timeline ---\n%s\n",
                 timeline.c_str());
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(kN) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StateMachine_FullAdaptiveCycle)->Unit(benchmark::kMillisecond);

}  // namespace
