// E5 — compact data types and adaptively triggered pre-aggregation (§I,
// following [12]).
//
// Expected shape: (a) Q1 with i32 arithmetic + FOR-narrow decode beats the
// 64-bit vectorized baseline; (b) array-direct aggregation crushes hash
// aggregation while the key domain is small, and the adaptive aggregator
// follows whichever side wins as the domain grows.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "relational/q1.h"
#include "storage/datagen.h"
#include "vm/preagg.h"

namespace {

using namespace avm;


const Table& SharedLineitem() {
  static std::unique_ptr<Table> table = [] {
    LineitemSpec spec;
    spec.num_rows = 600'000;
    return MakeLineitem(spec);
  }();
  return *table;
}

void BM_Q1_Wide64(benchmark::State& state) {
  const Table& t = SharedLineitem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(relational::RunQ1Vectorized(t).ValueOrDie());
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(t.num_rows()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Q1_Wide64)->Unit(benchmark::kMillisecond);

void BM_Q1_CompactTypes(benchmark::State& state) {
  const Table& t = SharedLineitem();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        relational::RunQ1VectorizedCompact(t).ValueOrDie());
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(t.num_rows()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Q1_CompactTypes)->Unit(benchmark::kMillisecond);

// ---- aggregation paths across group-domain sizes --------------------------

constexpr uint32_t kAggRows = 1 << 20;

struct AggData {
  std::vector<int64_t> keys;
  std::vector<int64_t> values;
};

AggData MakeAggData(int64_t domain) {
  DataGen gen(13);
  AggData d;
  d.keys = gen.UniformI64(kAggRows, 0, domain - 1);
  d.values = gen.UniformI64(kAggRows, 0, 100);
  return d;
}

void ConsumeAll(vm::AdaptiveSumAggregator& agg, const AggData& d) {
  for (uint32_t off = 0; off < kAggRows; off += 1024) {
    uint32_t n = std::min<uint32_t>(1024, kAggRows - off);
    agg.Consume(d.keys.data() + off, d.values.data() + off, n).Abort();
  }
}

void BM_Agg_Adaptive(benchmark::State& state) {
  AggData d = MakeAggData(state.range(0));
  bool array_path = false;
  for (auto _ : state) {
    vm::AdaptiveSumAggregator agg;
    ConsumeAll(agg, d);
    array_path = agg.using_array_path();
    benchmark::DoNotOptimize(agg.Result());
  }
  state.counters["array_path"] = array_path ? 1 : 0;
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(kAggRows) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Agg_Adaptive)
    ->Arg(6)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144)
    ->Unit(benchmark::kMillisecond);

void BM_Agg_HashOnly(benchmark::State& state) {
  AggData d = MakeAggData(state.range(0));
  for (auto _ : state) {
    vm::PreAggConfig cfg;
    cfg.max_direct_key = 0;  // never use the array path
    vm::AdaptiveSumAggregator agg(cfg);
    ConsumeAll(agg, d);
    benchmark::DoNotOptimize(agg.Result());
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(kAggRows) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Agg_HashOnly)
    ->Arg(6)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144)
    ->Unit(benchmark::kMillisecond);

}  // namespace
