// E9 — deforestation / loop fusion (§II).
//
// A chain of d element-wise maps: the vectorized interpreter materializes
// d-1 intermediate chunk vectors; the compiled trace fuses the chain into
// one loop with register-resident temporaries. Expected shape: interpreted
// cost grows ~linearly with depth; fused cost grows much slower (the loads/
// stores dominate a simple arithmetic chain).
//
// Both variants run through the ExecEngine facade; only the strategy
// differs.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dsl/ast.h"
#include "engine/exec_engine.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"

namespace {

using namespace avm;
using namespace avm::dsl;
using interp::DataBinding;

constexpr int64_t kRows = 1 << 20;

// depth separate `let mK = map (\x -> x*3+1) m{K-1}` statements.
Program MakeChain(int depth, int64_t rows) {
  Program p;
  p.data = {{"src", TypeId::kI64, false}, {"out", TypeId::kI64, true}};
  std::vector<StmtPtr> body;
  body.push_back(Let("m0", Skeleton(SkeletonKind::kRead,
                                    {Var("i"), Var("src")})));
  for (int d = 1; d <= depth; ++d) {
    body.push_back(Let(
        "m" + std::to_string(d),
        Skeleton(SkeletonKind::kMap,
                 {Lambda({"x"}, Var("x") * ConstI(3) + ConstI(1)),
                  Var("m" + std::to_string(d - 1))})));
  }
  body.push_back(ExprStmt(Skeleton(
      SkeletonKind::kWrite,
      {Var("out"), Var("i"), Var("m" + std::to_string(depth))})));
  body.push_back(Assign("i", Var("i") + Skeleton(SkeletonKind::kLen,
                                                 {Var("m0")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(rows)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  return p;
}

void RunChain(benchmark::State& state, bool jit) {
  const int depth = static_cast<int>(state.range(0));
  DataGen gen(37);
  auto data = gen.UniformI64(kRows, -50, 50);
  std::vector<int64_t> out(kRows);
  engine::EngineOptions opts;
  opts.strategy = jit ? engine::ExecutionStrategy::kAdaptiveJit
                      : engine::ExecutionStrategy::kInterpret;
  opts.vm.optimize_after_iterations = 2;
  opts.vm.constraints.max_streams = 16;
  for (auto _ : state) {
    engine::ExecContext ctx(
        [depth](int64_t rows) -> Result<Program> {
          return MakeChain(depth, rows);
        },
        kRows);
    ctx.BindInput("src", DataBinding::Raw(TypeId::kI64, data.data(), kRows));
    ctx.BindOutput("out",
                   DataBinding::Raw(TypeId::kI64, out.data(), kRows, true));
    auto r = engine::ExecEngine::Execute(ctx, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  benchutil::ReportTuples(state, kRows,
                          jit ? "engine-adaptive-jit" : "engine-interpret");
}

void BM_MapChain_Interpreted(benchmark::State& state) {
  RunChain(state, false);
}
BENCHMARK(BM_MapChain_Interpreted)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_MapChain_FusedJit(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  RunChain(state, true);
}
BENCHMARK(BM_MapChain_FusedJit)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
