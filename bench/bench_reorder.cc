// E4 — on-the-fly reordering of selective operators (§III-C).
//
// Two semijoin filters with asymmetric selectivity: running the selective
// one first is ~the sum-vs-product difference in probe work. The adaptive
// chain must converge to the good order from either starting order, and
// re-converge after mid-run selectivity drift.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "relational/join.h"
#include "storage/datagen.h"

namespace {

using namespace avm;
using relational::AdaptiveSemijoinChain;
using relational::HashSetI64;

constexpr uint32_t kChunk = 1024;
constexpr int kChunks = 512;

struct Workload {
  HashSetI64 selective;   // keeps ~2%
  HashSetI64 permissive;  // keeps ~90%
  std::vector<int64_t> keys;

  Workload() {
    for (int64_t k = 0; k < 10000; ++k) {
      if (k % 50 == 0) selective.Insert(k);
      if (k % 10 != 0) permissive.Insert(k);
    }
    DataGen gen(5);
    keys = gen.UniformI64(static_cast<size_t>(kChunk) * kChunks, 0, 9999);
  }
};

const Workload& SharedWorkload() {
  static Workload* w = new Workload();
  return *w;
}

void RunChain(benchmark::State& state,
              std::vector<const HashSetI64*> filters,
              AdaptiveSemijoinChain::OrderPolicy policy) {
  const Workload& w = SharedWorkload();
  std::vector<sel_t> out(kChunk), scratch(kChunk);
  uint64_t resorts = 0;
  uint64_t survivors = 0;
  for (auto _ : state) {
    AdaptiveSemijoinChain chain(filters, policy);
    survivors = 0;
    for (int c = 0; c < kChunks; ++c) {
      const int64_t* chunk = w.keys.data() + static_cast<size_t>(c) * kChunk;
      survivors += chain.FilterChunk({chunk, chunk}, kChunk, out.data(),
                                     scratch.data());
    }
    resorts = chain.resorts();
    benchmark::DoNotOptimize(survivors);
  }
  state.counters["resorts"] = static_cast<double>(resorts);
  state.counters["survivors"] = static_cast<double>(survivors);
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(kChunk) * kChunks * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Semijoin_FixedGoodOrder(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  RunChain(state, {&w.selective, &w.permissive},
           AdaptiveSemijoinChain::OrderPolicy::kFixed);
}
BENCHMARK(BM_Semijoin_FixedGoodOrder)->Unit(benchmark::kMillisecond);

void BM_Semijoin_FixedBadOrder(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  RunChain(state, {&w.permissive, &w.selective},
           AdaptiveSemijoinChain::OrderPolicy::kFixed);
}
BENCHMARK(BM_Semijoin_FixedBadOrder)->Unit(benchmark::kMillisecond);

void BM_Semijoin_AdaptiveFromBadOrder(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  RunChain(state, {&w.permissive, &w.selective},
           AdaptiveSemijoinChain::OrderPolicy::kAdaptive);
}
BENCHMARK(BM_Semijoin_AdaptiveFromBadOrder)->Unit(benchmark::kMillisecond);

// Drift: the key distribution shifts mid-run so the formerly selective
// filter becomes permissive; fixed orders pay, adaptive re-sorts.
void BM_Semijoin_AdaptiveUnderDrift(benchmark::State& state) {
  HashSetI64 low_keys, high_keys;
  for (int64_t k = 0; k < 5000; ++k) low_keys.Insert(k);        // [0,5k)
  for (int64_t k = 5000; k < 10000; ++k) high_keys.Insert(k);   // [5k,10k)
  DataGen gen(6);
  auto phase1 = gen.UniformI64(size_t{kChunk} * kChunks / 2, 0, 4999);
  auto phase2 = gen.UniformI64(size_t{kChunk} * kChunks / 2, 5000, 9999);
  std::vector<sel_t> out(kChunk), scratch(kChunk);
  uint64_t resorts = 0;
  for (auto _ : state) {
    AdaptiveSemijoinChain chain(
        {&low_keys, &high_keys},
        AdaptiveSemijoinChain::OrderPolicy::kAdaptive);
    for (int c = 0; c < kChunks / 2; ++c) {
      const int64_t* chunk = phase1.data() + static_cast<size_t>(c) * kChunk;
      chain.FilterChunk({chunk, chunk}, kChunk, out.data(), scratch.data());
    }
    for (int c = 0; c < kChunks / 2; ++c) {
      const int64_t* chunk = phase2.data() + static_cast<size_t>(c) * kChunk;
      chain.FilterChunk({chunk, chunk}, kChunk, out.data(), scratch.data());
    }
    resorts = chain.resorts();
  }
  state.counters["resorts"] = static_cast<double>(resorts);
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(kChunk) * kChunks * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Semijoin_AdaptiveUnderDrift)->Unit(benchmark::kMillisecond);

}  // namespace
