// E1 — TPC-H Q1 analogue across execution strategies (DESIGN.md).
//
// Paper claims (§I, citing [12] vs [17]): tuple-at-a-time compiled code is
// CPU-efficient, but vectorized execution *with adaptive optimizations*
// (compact data types, pre-aggregation) can beat it; plain DSL
// interpretation sits in between after the adaptive VM JITs its hot traces.
//
// All DSL strategies run through the ExecEngine facade; the *Parallel4
// variants add morsel-driven parallelism (4 workers, shared trace cache,
// merged aggregates) on top of the same engine entry point.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "engine/session.h"
#include "jit/source_jit.h"
#include "relational/q1.h"

namespace {

using namespace avm;
using namespace avm::relational;
using benchutil::ReportTuples;

const Table& SharedLineitem() {
  static std::unique_ptr<Table> table = [] {
    LineitemSpec spec;
    spec.num_rows = 600'000;  // ~SF 0.1
    return MakeLineitem(spec);
  }();
  return *table;
}

void BM_Q1_Scalar(benchmark::State& state) {
  const Table& t = SharedLineitem();
  for (auto _ : state) {
    auto r = RunQ1Scalar(t);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value());
  }
  ReportTuples(state, t.num_rows(), "scalar");
}
BENCHMARK(BM_Q1_Scalar)->Unit(benchmark::kMillisecond);

void BM_Q1_Vectorized(benchmark::State& state) {
  const Table& t = SharedLineitem();
  for (auto _ : state) {
    auto r = RunQ1Vectorized(t, static_cast<uint32_t>(state.range(0)));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value());
  }
  ReportTuples(state, t.num_rows(), "vectorized");
}
BENCHMARK(BM_Q1_Vectorized)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_Q1_VectorizedCompact(benchmark::State& state) {
  const Table& t = SharedLineitem();
  for (auto _ : state) {
    auto r = RunQ1VectorizedCompact(t, static_cast<uint32_t>(state.range(0)));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value());
  }
  ReportTuples(state, t.num_rows(), "vectorized-compact");
}
BENCHMARK(BM_Q1_VectorizedCompact)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_Q1_CompiledWholeQuery(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  const Table& t = SharedLineitem();
  // Warm the JIT cache so steady-state per-query time is measured (the
  // compile-cost story is E6).
  RunQ1CompiledWholeQuery(t).ValueOrDie();
  for (auto _ : state) {
    auto r = RunQ1CompiledWholeQuery(t);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value());
  }
  ReportTuples(state, t.num_rows(), "compiled-whole-query");
}
BENCHMARK(BM_Q1_CompiledWholeQuery)->Unit(benchmark::kMillisecond);

// --- DSL strategies through the ExecEngine facade -------------------------

void RunEngineBench(benchmark::State& state, engine::EngineOptions opts,
                    const char* strategy_label) {
  const Table& t = SharedLineitem();
  uint64_t traces = 0, injections = 0;
  size_t morsels = 0;
  // Warm the process-wide source-JIT cache outside the timing loop so the
  // adaptive-jit rows measure steady-state compiled execution instead of
  // one-off host-compiler invocations.
  {
    auto r = RunQ1Engine(t, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto r = RunQ1Engine(t, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    traces = r.value().report.traces_compiled;
    injections = r.value().report.injection_runs;
    morsels = r.value().report.morsels;
    benchmark::DoNotOptimize(r.value().result);
  }
  state.counters["traces"] = static_cast<double>(traces);
  state.counters["injection_runs"] = static_cast<double>(injections);
  if (morsels > 1) {
    state.counters["morsels"] = static_cast<double>(morsels);
  }
  ReportTuples(state, t.num_rows(), strategy_label);
}

void BM_Q1_EngineInterpreted(benchmark::State& state) {
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kInterpret;
  RunEngineBench(state, opts, "engine-interpret");
}
BENCHMARK(BM_Q1_EngineInterpreted)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Q1_EngineInterpretedScalarKernels(benchmark::State& state) {
  // Same interpreted engine path with the kernel registry pinned to the
  // scalar tier — the delta against engine-interpret is the SIMD lift.
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kInterpret;
  opts.vm.interp.kernel_tier = interp::KernelTier::kScalar;
  RunEngineBench(state, opts, "engine-interpret-scalar-kernels");
}
BENCHMARK(BM_Q1_EngineInterpretedScalarKernels)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Q1_EngineInterpretedParallel4(benchmark::State& state) {
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kInterpret;
  opts.num_workers = 4;
  RunEngineBench(state, opts, "engine-interpret-par4");
}
BENCHMARK(BM_Q1_EngineInterpretedParallel4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Q1_EngineAdaptiveJit(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kAdaptiveJit;
  opts.vm.optimize_after_iterations = 8;
  RunEngineBench(state, opts, "engine-adaptive-jit");
}
BENCHMARK(BM_Q1_EngineAdaptiveJit)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Q1_EngineAdaptiveJitParallel4(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kAdaptiveJit;
  opts.vm.optimize_after_iterations = 8;
  opts.num_workers = 4;
  RunEngineBench(state, opts, "engine-adaptive-jit-par4");
}
BENCHMARK(BM_Q1_EngineAdaptiveJitParallel4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- multi-query concurrency: N Q1 clients on one Session ----------------
//
// Each iteration submits `clients` independent Q1 queries to a single
// 4-worker Session; the fair morsel scheduler interleaves them and they
// share one TraceCache. Throughput counts every client's rows.

void RunSessionClientsBench(benchmark::State& state, engine::QueryOptions qo,
                            const char* strategy_label) {
  const Table& t = SharedLineitem();
  const size_t clients = static_cast<size_t>(state.range(0));
  engine::SessionOptions so;
  so.num_workers = 4;
  engine::Session session(so);
  // Build each client's query once; iterations measure execution only
  // (accumulators reset between submissions).
  std::vector<engine::Query> queries;
  queries.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    auto q = MakeQ1Query(t);
    if (!q.ok()) {
      state.SkipWithError(q.status().ToString().c_str());
      return;
    }
    queries.push_back(std::move(q).value());
  }
  for (auto _ : state) {
    for (engine::Query& q : queries) q.ResetAggregates();
    std::vector<engine::QueryHandle> handles;
    handles.reserve(clients);
    for (engine::Query& q : queries) {
      handles.push_back(session.Submit(q.context(), qo));
    }
    for (engine::QueryHandle& h : handles) {
      auto r = h.Wait();
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
  }
  ReportTuples(state, t.num_rows() * clients, strategy_label);
}

void BM_Q1_SessionConcurrentClients(benchmark::State& state) {
  engine::QueryOptions qo;
  qo.strategy = engine::ExecutionStrategy::kInterpret;
  RunSessionClientsBench(state, qo, "engine-session-interp-4clients");
}
BENCHMARK(BM_Q1_SessionConcurrentClients)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Q1_SessionConcurrentClientsJit(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  engine::QueryOptions qo;
  qo.strategy = engine::ExecutionStrategy::kAdaptiveJit;
  qo.vm.optimize_after_iterations = 8;
  RunSessionClientsBench(state, qo, "engine-session-jit-4clients");
}
BENCHMARK(BM_Q1_SessionConcurrentClientsJit)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
