// E1 — TPC-H Q1 analogue across execution strategies (DESIGN.md).
//
// Paper claims (§I, citing [12] vs [17]): tuple-at-a-time compiled code is
// CPU-efficient, but vectorized execution *with adaptive optimizations*
// (compact data types, pre-aggregation) can beat it; plain DSL
// interpretation sits in between after the adaptive VM JITs its hot traces.
#include <benchmark/benchmark.h>

#include "jit/source_jit.h"
#include "relational/q1.h"

namespace {

using namespace avm;
using namespace avm::relational;

const Table& SharedLineitem() {
  static std::unique_ptr<Table> table = [] {
    LineitemSpec spec;
    spec.num_rows = 600'000;  // ~SF 0.1
    return MakeLineitem(spec);
  }();
  return *table;
}

void ReportRows(benchmark::State& state, uint64_t rows) {
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(rows) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Q1_Scalar(benchmark::State& state) {
  const Table& t = SharedLineitem();
  for (auto _ : state) {
    auto r = RunQ1Scalar(t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r.value());
  }
  ReportRows(state, t.num_rows());
}
BENCHMARK(BM_Q1_Scalar)->Unit(benchmark::kMillisecond);

void BM_Q1_Vectorized(benchmark::State& state) {
  const Table& t = SharedLineitem();
  for (auto _ : state) {
    auto r = RunQ1Vectorized(t, static_cast<uint32_t>(state.range(0)));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r.value());
  }
  ReportRows(state, t.num_rows());
}
BENCHMARK(BM_Q1_Vectorized)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_Q1_VectorizedCompact(benchmark::State& state) {
  const Table& t = SharedLineitem();
  for (auto _ : state) {
    auto r = RunQ1VectorizedCompact(t, static_cast<uint32_t>(state.range(0)));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r.value());
  }
  ReportRows(state, t.num_rows());
}
BENCHMARK(BM_Q1_VectorizedCompact)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_Q1_CompiledWholeQuery(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  const Table& t = SharedLineitem();
  // Warm the JIT cache so steady-state per-query time is measured (the
  // compile-cost story is E6).
  RunQ1CompiledWholeQuery(t).ValueOrDie();
  for (auto _ : state) {
    auto r = RunQ1CompiledWholeQuery(t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r.value());
  }
  ReportRows(state, t.num_rows());
}
BENCHMARK(BM_Q1_CompiledWholeQuery)->Unit(benchmark::kMillisecond);

void BM_Q1_DslInterpreted(benchmark::State& state) {
  const Table& t = SharedLineitem();
  vm::VmOptions opts;
  opts.enable_jit = false;
  for (auto _ : state) {
    auto r = RunQ1AdaptiveVm(t, opts);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r.value().result);
  }
  ReportRows(state, t.num_rows());
}
BENCHMARK(BM_Q1_DslInterpreted)->Unit(benchmark::kMillisecond);

void BM_Q1_DslAdaptiveVm(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  const Table& t = SharedLineitem();
  vm::VmOptions opts;
  opts.optimize_after_iterations = 8;
  uint64_t traces = 0, injections = 0;
  for (auto _ : state) {
    auto r = RunQ1AdaptiveVm(t, opts);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    traces = r.value().report.traces_compiled;
    injections = r.value().report.injection_runs;
    benchmark::DoNotOptimize(r.value().result);
  }
  state.counters["traces"] = static_cast<double>(traces);
  state.counters["injection_runs"] = static_cast<double>(injections);
  ReportRows(state, t.num_rows());
}
BENCHMARK(BM_Q1_DslAdaptiveVm)->Unit(benchmark::kMillisecond);

}  // namespace
