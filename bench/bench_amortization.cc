// E6 — interpret cold / short programs, compile hot ones (§III).
//
// The same pipeline at growing input sizes: always-compile pays the fixed
// source-JIT latency, interpretation pays per-tuple overhead; the adaptive
// policy (compile after a warmup of interpreted chunks) tracks the better
// of the two on both ends and wins overall past the crossover.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dsl/builder.h"
#include "dsl/typecheck.h"
#include "engine/exec_engine.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"

namespace {

using namespace avm;
using interp::DataBinding;

struct Pipeline {
  dsl::Program program;
  std::vector<int64_t> data;
  std::vector<int64_t> out;
};

std::unique_ptr<Pipeline> MakePipeline(int64_t rows, uint64_t salt) {
  auto p = std::make_unique<Pipeline>();
  // The salt lands in the program text so each benchmark size compiles its
  // own trace (no cross-size JIT cache pollution).
  p->program = dsl::MakeMapPipeline(
      TypeId::kI64,
      dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(3) +
                             dsl::ConstI(static_cast<int64_t>(salt))),
      rows);
  dsl::TypeCheck(&p->program).Abort();
  DataGen gen(17);
  p->data = gen.UniformI64(static_cast<size_t>(rows), -1000, 1000);
  p->out.assign(static_cast<size_t>(rows), 0);
  return p;
}

void RunOnce(Pipeline& p, const engine::EngineOptions& opts,
             engine::ExecReport* report) {
  const uint64_t n = p.data.size();
  engine::ExecContext ctx(&p.program);
  ctx.BindInput("src", DataBinding::Raw(TypeId::kI64, p.data.data(), n));
  ctx.BindOutput("out", DataBinding::Raw(TypeId::kI64, p.out.data(), n, true));
  *report = engine::ExecEngine::Execute(ctx, opts).ValueOrDie();
}

void BM_Amortize_InterpretOnly(benchmark::State& state) {
  auto p = MakePipeline(state.range(0), 0);
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kInterpret;
  engine::ExecReport rep;
  for (auto _ : state) RunOnce(*p, opts, &rep);
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(state.range(0)) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Amortize_InterpretOnly)
    ->Arg(8 << 10)->Arg(64 << 10)->Arg(512 << 10)->Arg(4 << 20)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Amortize_CompileImmediately(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kAdaptiveJit;
  opts.vm.optimize_after_iterations = 1;  // compile on the first heartbeat
  engine::ExecReport rep;
  uint64_t salt = 1000;
  double compile_s = 0;
  for (auto _ : state) {
    // Fresh program text per iteration => genuine compile each time (this
    // is what "always compile" costs for short queries).
    state.PauseTiming();
    auto p = MakePipeline(state.range(0), salt++);
    state.ResumeTiming();
    RunOnce(*p, opts, &rep);
    compile_s = rep.compile_seconds;
  }
  state.counters["compile_ms"] = compile_s * 1e3;
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(state.range(0)) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Amortize_CompileImmediately)
    ->Arg(8 << 10)->Arg(64 << 10)->Arg(512 << 10)->Arg(4 << 20)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Amortize_Adaptive(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  engine::EngineOptions opts;
  opts.strategy = engine::ExecutionStrategy::kAdaptiveJit;
  opts.vm.optimize_after_iterations = 16;  // interpret short runs entirely
  engine::ExecReport rep;
  uint64_t salt = 2'000'000;
  for (auto _ : state) {
    state.PauseTiming();
    auto p = MakePipeline(state.range(0), salt++);
    state.ResumeTiming();
    RunOnce(*p, opts, &rep);
  }
  state.counters["traces"] = static_cast<double>(rep.traces_compiled);
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(state.range(0)) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Amortize_Adaptive)
    ->Arg(8 << 10)->Arg(64 << 10)->Arg(512 << 10)->Arg(4 << 20)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
