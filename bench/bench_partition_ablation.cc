// E7 — ablation of the greedy-partitioning heuristics (§III-B): the TLB
// stream cap and the filter-exclusion rule.
//
// A wide pipeline (many independent read→map→write lanes) is partitioned
// under different max_streams budgets; each run reports how many traces
// cover the graph and the end-to-end adaptive-VM time. Expected shape:
// tiny budgets fragment the graph into many small functions (more boundary
// materialization, slower); generous budgets approach one fused function.
//
// NOTE: this microbench deliberately constructs AdaptiveVm below the
// ExecEngine facade — it measures VM internals (state machine, partitioner)
// the facade intentionally hides. Application-level code goes through
// engine::ExecEngine.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

#include "analysis/verify_program.h"
#include "dsl/ast.h"
#include "dsl/typecheck.h"
#include "ir/depgraph.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"
#include "vm/adaptive_vm.h"

namespace {

using namespace avm;
using namespace avm::dsl;
using interp::DataBinding;

constexpr int kLanes = 6;
constexpr int64_t kRows = 1 << 19;

// One shared read fans out to `kLanes` map->write lanes: merging lanes into
// one fused function adds one output stream per lane, so the stream budget
// directly controls how much of the graph one trace may cover.
Program MakeWideProgram() {
  Program p;
  p.data.push_back({"in0", TypeId::kI64, false});
  for (int lane = 0; lane < kLanes; ++lane) {
    p.data.push_back({"out" + std::to_string(lane), TypeId::kI64, true});
  }
  std::vector<StmtPtr> body;
  body.push_back(Let("v0", Skeleton(SkeletonKind::kRead,
                                    {Var("i"), Var("in0")})));
  for (int lane = 0; lane < kLanes; ++lane) {
    std::string mi = "m" + std::to_string(lane);
    body.push_back(Let(
        mi, Skeleton(SkeletonKind::kMap,
                     {Lambda({"x"}, Var("x") * ConstI(lane + 2) + ConstI(1)),
                      Var("v0")})));
    body.push_back(ExprStmt(Skeleton(
        SkeletonKind::kWrite,
        {Var("out" + std::to_string(lane)), Var("i"), Var(mi)})));
  }
  body.push_back(Assign("i", Var("i") + Skeleton(SkeletonKind::kLen,
                                                 {Var("v0")})));
  body.push_back(If(Call(ScalarOp::kGe, {Var("i"), ConstI(kRows)}),
                    {Break()}));
  p.stmts = {MutDef("i"), Assign("i", ConstI(0)), Loop(std::move(body))};
  p.AssignIds();
  TypeCheck(&p).Abort();
  // Below-facade construction: give it the same gate QueryBuilder-built
  // programs get (docs/VERIFIER.md).
  const analysis::VerifyResult vr = analysis::VerifyProgram(p);
  if (!vr.clean()) {
    std::fprintf(stderr, "verifier: %s\n", vr.ToString().c_str());
    std::abort();
  }
  return p;
}

void BM_Partition_StreamBudget(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  Program p = MakeWideProgram();
  DataGen gen(23);
  std::vector<int64_t> input = gen.UniformI64(kRows, -100, 100);
  std::vector<std::vector<int64_t>> outs(kLanes);
  for (int lane = 0; lane < kLanes; ++lane) outs[lane].assign(kRows, 0);
  uint64_t traces = 0;
  for (auto _ : state) {
    vm::VmOptions opts;
    opts.optimize_after_iterations = 2;
    opts.constraints.max_streams = static_cast<size_t>(state.range(0));
    opts.max_traces_per_pass = 16;
    opts.min_cost_share = 0.0;
    vm::AdaptiveVm vmach(&p, opts);
    vmach.interpreter()
        .BindData("in0", DataBinding::Raw(TypeId::kI64, input.data(), kRows))
        .Abort();
    for (int lane = 0; lane < kLanes; ++lane) {
      vmach.interpreter()
          .BindData("out" + std::to_string(lane),
                    DataBinding::Raw(TypeId::kI64, outs[lane].data(), kRows,
                                     true))
          .Abort();
    }
    vmach.Run().Abort();
    traces = vmach.Report().traces_compiled;
  }
  state.counters["traces"] = static_cast<double>(traces);
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(kRows) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Partition_StreamBudget)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(24)
    ->Unit(benchmark::kMillisecond);

// Static partitioning statistics (no execution): trace count and mean trace
// size under each budget — the graph-shape half of the ablation.
void BM_Partition_GraphShape(benchmark::State& state) {
  Program p = MakeWideProgram();
  auto graph = ir::DepGraph::Build(p).ValueOrDie();
  size_t num_traces = 0;
  double mean_nodes = 0;
  for (auto _ : state) {
    ir::PartitionConstraints c;
    c.max_streams = static_cast<size_t>(state.range(0));
    auto traces = ir::GreedyPartition(graph, c);
    num_traces = traces.size();
    size_t nodes = 0;
    for (const auto& t : traces) nodes += t.node_ids.size();
    mean_nodes = traces.empty() ? 0
                                : static_cast<double>(nodes) / traces.size();
    benchmark::DoNotOptimize(traces);
  }
  state.counters["traces"] = static_cast<double>(num_traces);
  state.counters["nodes_per_trace"] = mean_nodes;
}
BENCHMARK(BM_Partition_GraphShape)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(24);

}  // namespace
