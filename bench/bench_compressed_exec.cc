// E3 — compressed execution and scheme-change fallback (§I, §III-C).
//
// Expected shape: (a) FOR-specialized execution (operate on narrow deltas +
// reference) beats decode-to-64-bit-then-execute; (b) as the fraction of
// blocks whose scheme differs from the specialized one grows, the adaptive
// VM falls back more often and its advantage shrinks — but correctness and
// graceful degradation hold (the trace cache stops recompilation).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dsl/builder.h"
#include "engine/exec_engine.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"

namespace {

using namespace avm;
using interp::DataBinding;

constexpr uint32_t kRows = 1 << 20;
constexpr uint32_t kBlock = 16 * 1024;

// Column where `plain_per_8` of every 8 blocks are Plain (scheme changes),
// the rest FOR.
std::unique_ptr<Column> MakeMixedColumn(int plain_per_8) {
  auto col = std::make_unique<Column>(TypeId::kI64, kBlock);
  DataGen gen(11);
  int block = 0;
  for (uint32_t off = 0; off < kRows; off += kBlock, ++block) {
    auto narrow = gen.UniformI64(kBlock, 100000, 100000 + 4096);
    if (block % 8 < plain_per_8) {
      col->AppendBlockWithScheme(Scheme::kPlain, narrow.data(), kBlock)
          .Abort();
    } else {
      col->AppendBlockWithScheme(Scheme::kFor, narrow.data(), kBlock).Abort();
    }
  }
  return col;
}

void RunVm(benchmark::State& state, const Column& col, bool jit,
           bool specialize) {
  std::vector<int64_t> out(kRows);
  engine::EngineOptions opts;
  opts.strategy = jit ? engine::ExecutionStrategy::kAdaptiveJit
                      : engine::ExecutionStrategy::kInterpret;
  opts.vm.specialize_compression = specialize;
  opts.vm.optimize_after_iterations = 4;
  opts.vm.recheck_interval = 16;
  uint64_t fallbacks = 0, runs = 0, compiled = 0;
  for (auto _ : state) {
    engine::ExecContext ctx(
        [](int64_t rows) -> Result<dsl::Program> {
          return dsl::MakeMapPipeline(
              TypeId::kI64,
              dsl::Lambda({"x"},
                          dsl::Var("x") * dsl::ConstI(3) + dsl::ConstI(1)),
              rows);
        },
        kRows);
    ctx.BindInputColumn("src", &col);
    ctx.BindOutput("out",
                   DataBinding::Raw(TypeId::kI64, out.data(), kRows, true));
    auto r = engine::ExecEngine::Execute(ctx, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    fallbacks = r.value().injection_fallbacks;
    runs = r.value().injection_runs;
    compiled = r.value().traces_compiled;
  }
  state.counters["fallbacks"] = static_cast<double>(fallbacks);
  state.counters["inj_runs"] = static_cast<double>(runs);
  state.counters["traces"] = static_cast<double>(compiled);
  benchutil::ReportTuples(
      state, kRows,
      !jit ? "engine-interpret"
           : (specialize ? "engine-jit-for-specialized"
                         : "engine-jit-plain-decode"));
}

// Sweep: number of Plain blocks per 8 (0 = pure FOR ... 8 = pure Plain).
void BM_CompressedExec_Interpreted(benchmark::State& state) {
  auto col = MakeMixedColumn(static_cast<int>(state.range(0)));
  RunVm(state, *col, /*jit=*/false, /*specialize=*/false);
}
BENCHMARK(BM_CompressedExec_Interpreted)
    ->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CompressedExec_JitPlainDecode(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  auto col = MakeMixedColumn(static_cast<int>(state.range(0)));
  RunVm(state, *col, /*jit=*/true, /*specialize=*/false);
}
BENCHMARK(BM_CompressedExec_JitPlainDecode)
    ->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CompressedExec_JitForSpecialized(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  auto col = MakeMixedColumn(static_cast<int>(state.range(0)));
  RunVm(state, *col, /*jit=*/true, /*specialize=*/true);
}
BENCHMARK(BM_CompressedExec_JitForSpecialized)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
