// E3 — compressed execution and scheme-change fallback (§I, §III-C).
//
// Expected shape: (a) FOR-specialized execution (operate on narrow deltas +
// reference) beats decode-to-64-bit-then-execute; (b) as the fraction of
// blocks whose scheme differs from the specialized one grows, the adaptive
// VM falls back more often and its advantage shrinks — but correctness and
// graceful degradation hold (the trace cache stops recompilation).
#include <benchmark/benchmark.h>

#include "dsl/builder.h"
#include "dsl/typecheck.h"
#include "jit/source_jit.h"
#include "storage/datagen.h"
#include "vm/adaptive_vm.h"

namespace {

using namespace avm;
using interp::DataBinding;

constexpr uint32_t kRows = 1 << 20;
constexpr uint32_t kBlock = 16 * 1024;

// Column where `plain_per_8` of every 8 blocks are Plain (scheme changes),
// the rest FOR.
std::unique_ptr<Column> MakeMixedColumn(int plain_per_8) {
  auto col = std::make_unique<Column>(TypeId::kI64, kBlock);
  DataGen gen(11);
  int block = 0;
  for (uint32_t off = 0; off < kRows; off += kBlock, ++block) {
    auto narrow = gen.UniformI64(kBlock, 100000, 100000 + 4096);
    if (block % 8 < plain_per_8) {
      col->AppendBlockWithScheme(Scheme::kPlain, narrow.data(), kBlock)
          .Abort();
    } else {
      col->AppendBlockWithScheme(Scheme::kFor, narrow.data(), kBlock).Abort();
    }
  }
  return col;
}

void RunVm(benchmark::State& state, const Column& col, bool jit,
           bool specialize) {
  dsl::Program p = dsl::MakeMapPipeline(
      TypeId::kI64,
      dsl::Lambda({"x"}, dsl::Var("x") * dsl::ConstI(3) + dsl::ConstI(1)),
      kRows);
  dsl::TypeCheck(&p).Abort();
  std::vector<int64_t> out(kRows);
  uint64_t fallbacks = 0, runs = 0, compiled = 0;
  for (auto _ : state) {
    vm::VmOptions opts;
    opts.enable_jit = jit;
    opts.specialize_compression = specialize;
    opts.optimize_after_iterations = 4;
    opts.recheck_interval = 16;
    vm::AdaptiveVm vmach(&p, opts);
    vmach.interpreter().BindData("src", DataBinding::FromColumn(&col)).Abort();
    vmach.interpreter()
        .BindData("out",
                  DataBinding::Raw(TypeId::kI64, out.data(), kRows, true))
        .Abort();
    vmach.Run().Abort();
    auto rep = vmach.Report();
    fallbacks = rep.injection_fallbacks;
    runs = rep.injection_runs;
    compiled = rep.traces_compiled;
  }
  state.counters["fallbacks"] = static_cast<double>(fallbacks);
  state.counters["inj_runs"] = static_cast<double>(runs);
  state.counters["traces"] = static_cast<double>(compiled);
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(kRows) * state.iterations(),
      benchmark::Counter::kIsRate);
}

// Sweep: number of Plain blocks per 8 (0 = pure FOR ... 8 = pure Plain).
void BM_CompressedExec_Interpreted(benchmark::State& state) {
  auto col = MakeMixedColumn(static_cast<int>(state.range(0)));
  RunVm(state, *col, /*jit=*/false, /*specialize=*/false);
}
BENCHMARK(BM_CompressedExec_Interpreted)
    ->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CompressedExec_JitPlainDecode(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  auto col = MakeMixedColumn(static_cast<int>(state.range(0)));
  RunVm(state, *col, /*jit=*/true, /*specialize=*/false);
}
BENCHMARK(BM_CompressedExec_JitPlainDecode)
    ->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CompressedExec_JitForSpecialized(benchmark::State& state) {
  if (!jit::SourceJit::Available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  auto col = MakeMixedColumn(static_cast<int>(state.range(0)));
  RunVm(state, *col, /*jit=*/true, /*specialize=*/true);
}
BENCHMARK(BM_CompressedExec_JitForSpecialized)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
