// Out-of-core ORDER BY cost (docs/SPILL.md): the same many-to-many join +
// ORDER BY — filtered probe joined against a duplicate-key build side,
// three output columns merge-sorted at the barrier — run unbudgeted
// (resident output windows, in-memory merge) and under a memory budget far
// smaller than the output windows (per-morsel scratch windows sorted and
// spilled as runs, k-way streaming merge from disk), serial and with 4
// workers. The outputs are bit-identical by construction (the differential
// suite enforces it); these rows price the spill path. Results land in
// BENCH_results.json via bench_util's row-replacing sink, with the spill_*
// and mem_* counters attached through ReportSpill.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "engine/query_builder.h"
#include "engine/session.h"
#include "util/rng.h"

namespace {

using namespace avm;
using dsl::ConstI;
using dsl::Var;

constexpr uint64_t kProbeRows = 400'000;
constexpr int64_t kKeyHi = 999;

// Output windows for the unbudgeted run are ~400k rows x fan-out 2 x
// 4 cols x 8 B ≈ 25 MB; this budget forces every morsel through the
// spill path while leaving room for the build-side tables.
constexpr uint64_t kTightBudget = 1u << 20;  // 1 MiB

struct SpillFixture {
  std::unique_ptr<Table> probe;  ///< f_key / f_a / f_b fact rows
  std::unique_ptr<Table> dup;    ///< d_key / d_val, 1..3 copies per key

  SpillFixture() {
    Schema ps({{"f_key", TypeId::kI64},
               {"f_a", TypeId::kI64},
               {"f_b", TypeId::kI64}});
    probe = std::make_unique<Table>(ps);
    Rng rng(4242);
    std::vector<int64_t> key(kProbeRows), a(kProbeRows), b(kProbeRows);
    for (uint64_t i = 0; i < kProbeRows; ++i) {
      key[i] = rng.NextInRange(-3, kKeyHi + 40);
      a[i] = rng.NextInRange(0, 999);
      b[i] = rng.NextInRange(0, 999);
    }
    probe->column(0)
        .AppendValues(key.data(), static_cast<uint32_t>(kProbeRows))
        .Abort("append");
    probe->column(1)
        .AppendValues(a.data(), static_cast<uint32_t>(kProbeRows))
        .Abort("append");
    probe->column(2)
        .AppendValues(b.data(), static_cast<uint32_t>(kProbeRows))
        .Abort("append");

    Schema ds({{"d_key", TypeId::kI64}, {"d_val", TypeId::kI64}});
    dup = std::make_unique<Table>(ds);
    std::vector<int64_t> dk, dv;
    for (int64_t k = 0; k <= kKeyHi; ++k) {
      const int64_t copies = rng.NextInRange(1, 3);
      for (int64_t c = 0; c < copies; ++c) {
        dk.push_back(k);
        dv.push_back(rng.NextInRange(1, 500));
      }
    }
    dup->column(0)
        .AppendValues(dk.data(), static_cast<uint32_t>(dk.size()))
        .Abort("append");
    dup->column(1)
        .AppendValues(dv.data(), static_cast<uint32_t>(dv.size()))
        .Abort("append");
  }
};

SpillFixture& Fixture() {
  static SpillFixture f;
  return f;
}

engine::Query BuildSpillQuery(SpillFixture& f) {
  engine::QueryBuilder qb(*f.probe);
  qb.Filter(Var("f_a") < ConstI(800))
      .Join(*f.dup, "f_key", "d_key", {"d_val"})
      .Output("f_key")
      .Output("f_b")
      .Output("d_val")
      .OrderBy("f_key");
  return qb.Build().ValueOrDie();
}

/// One engine per benchmark; the same Query is re-submitted every
/// iteration (the prepare hook re-decides resident-vs-spill per
/// submission), so each timed iteration covers join probe, window
/// materialization, sort, and — when budgeted — spill + k-way merge.
void RunSpillOrderBy(benchmark::State& state, uint64_t budget,
                     size_t workers, const char* label) {
  SpillFixture& f = Fixture();
  engine::EngineOptions eo;
  eo.strategy = engine::ExecutionStrategy::kInterpret;
  eo.num_workers = workers;
  eo.memory_budget = budget;
  engine::ExecEngine engine(eo);
  engine::Query q = BuildSpillQuery(f);
  engine::ExecReport last;
  {
    auto r = engine.Run(q.context());
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto r = engine.Run(q.context());
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    last = r.value();
    benchmark::DoNotOptimize(q.num_result_rows());
  }
  avm::benchutil::ReportTuples(state, kProbeRows, label);
  avm::benchutil::ReportSpill(state, last);
}

void BM_SpillOrderBy_InMemory(benchmark::State& state) {
  RunSpillOrderBy(state, /*budget=*/0, 1, "interp-resident");
}
BENCHMARK(BM_SpillOrderBy_InMemory)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SpillOrderBy_Spilled(benchmark::State& state) {
  RunSpillOrderBy(state, kTightBudget, 1, "interp-spilled");
}
BENCHMARK(BM_SpillOrderBy_Spilled)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SpillOrderBy_InMemoryParallel4(benchmark::State& state) {
  RunSpillOrderBy(state, /*budget=*/0, 4, "interp-4w-resident");
}
BENCHMARK(BM_SpillOrderBy_InMemoryParallel4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SpillOrderBy_SpilledParallel4(benchmark::State& state) {
  RunSpillOrderBy(state, kTightBudget, 4, "interp-4w-spilled");
}
BENCHMARK(BM_SpillOrderBy_SpilledParallel4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
