// Shared benchmark harness: every bench_* binary includes this header once.
//
// It supplies the binary's main(), which runs Google Benchmark as usual and
// additionally appends one JSON line per benchmark run to BENCH_results.json
// (override the path with AVM_BENCH_RESULTS, disable with
// AVM_BENCH_RESULTS=off). Each line carries the fields downstream tooling
// tracks across PRs:
//
//   {"bench": <binary>, "name": <benchmark/args>, "strategy": <label>,
//    "tuples_per_sec": <double|null>, "ns_per_tuple": <double|null>,
//    "ms_per_iter": <double>}
//
// Benchmarks report throughput via ReportTuples(state, tuples, strategy):
// it sets the "tuples/s" rate counter (shown on the console) and the
// strategy label the JSON line is tagged with.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace avm::benchutil {

/// Attach the standard throughput counter and strategy label to a run.
inline void ReportTuples(benchmark::State& state, uint64_t tuples_per_iter,
                         const std::string& strategy = "") {
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(tuples_per_iter) * state.iterations(),
      benchmark::Counter::kIsRate);
  if (!strategy.empty()) state.SetLabel(strategy);
}

/// Attach the JIT observability block of an ExecReport/VmReport-shaped
/// struct to a run. Counters prefixed "jit_" or "disk_" are serialized into
/// the run's BENCH_results.json row (per-tier compile latency, disk-cache
/// traffic, tier upgrades), so cached-vs-compiled runs are distinguishable
/// in the tracked results. Templated to keep this header engine-agnostic.
template <typename Report>
inline void ReportJit(benchmark::State& state, const Report& r) {
  state.counters["jit_fast_compiles"] =
      benchmark::Counter(static_cast<double>(r.fast_compiles));
  state.counters["jit_opt_compiles"] =
      benchmark::Counter(static_cast<double>(r.opt_compiles));
  state.counters["jit_fast_compile_ms"] =
      benchmark::Counter(r.fast_compile_seconds * 1e3);
  state.counters["jit_opt_compile_ms"] =
      benchmark::Counter(r.opt_compile_seconds * 1e3);
  state.counters["jit_upgrades_requested"] =
      benchmark::Counter(static_cast<double>(r.tier_upgrades_requested));
  state.counters["jit_upgrades"] =
      benchmark::Counter(static_cast<double>(r.tier_upgrades));
  state.counters["disk_hits"] =
      benchmark::Counter(static_cast<double>(r.disk_cache_hits));
  state.counters["disk_misses"] =
      benchmark::Counter(static_cast<double>(r.disk_cache_misses));
  state.counters["disk_corrupt"] =
      benchmark::Counter(static_cast<double>(r.disk_cache_corrupt));
}

/// Attach the out-of-core block of an ExecReport-shaped struct to a run.
/// Counters prefixed "spill_" or "mem_" are serialized into the run's
/// BENCH_results.json row (bytes spilled to disk, sorted-run count, tracked
/// high-water mark), so budgeted-vs-resident runs are distinguishable in
/// the tracked results. Templated to keep this header engine-agnostic.
template <typename Report>
inline void ReportSpill(benchmark::State& state, const Report& r) {
  state.counters["spill_bytes"] =
      benchmark::Counter(static_cast<double>(r.bytes_spilled));
  state.counters["spill_runs"] =
      benchmark::Counter(static_cast<double>(r.spill_runs));
  state.counters["spill_chunks_streamed"] =
      benchmark::Counter(static_cast<double>(r.chunks_streamed));
  state.counters["mem_peak_tracked_bytes"] =
      benchmark::Counter(static_cast<double>(r.peak_tracked_bytes));
}

namespace internal {

struct RunRecord {
  std::string name;
  std::string strategy;
  double tuples_per_sec = -1;  // <0 = absent
  double ms_per_iter = 0;
  // JIT/disk-cache/spill counters attached via ReportJit / ReportSpill,
  // serialized verbatim.
  std::vector<std::pair<std::string, double>> extras;
};

/// Console reporter that also collects per-run records for the JSON sink.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      RunRecord rec;
      rec.name = run.benchmark_name();
      rec.strategy = run.report_label;
      rec.ms_per_iter =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations) * 1e3
              : 0;
      auto it = run.counters.find("tuples/s");
      if (it == run.counters.end()) it = run.counters.find("rows/s");
      if (it != run.counters.end()) rec.tuples_per_sec = it->second.value;
      for (const auto& [cname, counter] : run.counters) {
        if (cname.rfind("jit_", 0) == 0 || cname.rfind("disk_", 0) == 0 ||
            cname.rfind("spill_", 0) == 0 || cname.rfind("mem_", 0) == 0) {
          rec.extras.emplace_back(cname, counter.value);
        }
      }
      std::sort(rec.extras.begin(), rec.extras.end());
      records.push_back(std::move(rec));
    }
  }

  std::vector<RunRecord> records;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Identifying prefix of a result line: everything up to the measurements.
/// Two lines with the same key are the same logical benchmark row.
inline std::string RecordKey(const std::string& bench, const std::string& name,
                             const std::string& strategy) {
  return "{\"bench\":\"" + JsonEscape(bench) + "\",\"name\":\"" +
         JsonEscape(name) + "\",\"strategy\":\"" + JsonEscape(strategy) +
         "\",";
}

inline void WriteRecords(const char* binary_name,
                         const std::vector<RunRecord>& records) {
  const char* path = std::getenv("AVM_BENCH_RESULTS");
  if (path != nullptr && std::strcmp(path, "off") == 0) return;
  if (path == nullptr || *path == '\0') path = "BENCH_results.json";

  // Reruns REPLACE rows with the same (bench, name, strategy) instead of
  // appending duplicates, so the tracked results file stays curated: keep
  // every existing line whose key this run does not produce. (Concurrent
  // bench binaries writing the same file still race last-writer-wins —
  // run them sequentially or point AVM_BENCH_RESULTS at distinct files.)
  std::vector<std::string> run_keys;
  run_keys.reserve(records.size());
  for (const RunRecord& r : records) {
    run_keys.push_back(RecordKey(binary_name, r.name, r.strategy));
  }
  auto replaced_by_this_run = [&](const std::string& line) {
    for (const std::string& key : run_keys) {
      if (line.rfind(key, 0) == 0) return true;
    }
    return false;
  };
  std::vector<std::string> retained;
  if (std::FILE* in = std::fopen(path, "r")) {
    std::string line;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), in) != nullptr) {
      line += buf;
      if (line.empty() || line.back() != '\n') continue;  // long line: keep reading
      if (!replaced_by_this_run(line)) retained.push_back(line);
      line.clear();
    }
    // Unterminated trailing line: same key treatment, plus the newline.
    if (!line.empty() && !replaced_by_this_run(line)) {
      retained.push_back(line + "\n");
    }
    std::fclose(in);
  }

  // Rewrite via a temp file + rename so a crash mid-write cannot truncate
  // the curated results file (the rename replaces it atomically).
  const std::string tmp_path = std::string(path) + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_util: cannot open %s for writing\n",
                 tmp_path.c_str());
    return;
  }
  for (const std::string& line : retained) {
    std::fputs(line.c_str(), f);
  }
  for (const RunRecord& r : records) {
    std::fputs(RecordKey(binary_name, r.name, r.strategy).c_str(), f);
    if (r.tuples_per_sec >= 0) {
      std::fprintf(f, "\"tuples_per_sec\":%.1f,\"ns_per_tuple\":%.3f,",
                   r.tuples_per_sec,
                   r.tuples_per_sec > 0 ? 1e9 / r.tuples_per_sec : 0.0);
    } else {
      std::fprintf(f, "\"tuples_per_sec\":null,\"ns_per_tuple\":null,");
    }
    for (const auto& [cname, value] : r.extras) {
      std::fprintf(f, "\"%s\":%.3f,", JsonEscape(cname).c_str(), value);
    }
    std::fprintf(f, "\"ms_per_iter\":%.4f}\n", r.ms_per_iter);
  }
  std::fclose(f);
  if (std::rename(tmp_path.c_str(), path) != 0) {
    std::fprintf(stderr, "bench_util: cannot rename %s to %s\n",
                 tmp_path.c_str(), path);
  }
}

inline const char* Basename(const char* argv0) {
  const char* slash = std::strrchr(argv0, '/');
  return slash != nullptr ? slash + 1 : argv0;
}

}  // namespace internal
}  // namespace avm::benchutil

/// Optional subprocess hook: a bench binary that defines this strong symbol
/// can re-execute itself (via /proc/self/exe) with AVM_BENCH_CHILD set; the
/// child then runs this function with the variable's value instead of the
/// benchmark harness. bench_warm_restart uses it to measure true
/// cold-process vs warm-process first-query latency.
extern "C" int avm_bench_child_main(const char* task) __attribute__((weak));

int main(int argc, char** argv) {
  if (const char* task = std::getenv("AVM_BENCH_CHILD");
      task != nullptr && avm_bench_child_main != nullptr) {
    return avm_bench_child_main(task);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  avm::benchutil::internal::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  avm::benchutil::internal::WriteRecords(
      avm::benchutil::internal::Basename(argv[0]), reporter.records);
  benchmark::Shutdown();
  return 0;
}
