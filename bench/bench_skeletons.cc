// T1 — per-tuple cost of every Table I skeleton's kernel implementation
// (the pre-compiled primitive catalogue the interpreter dispatches to).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "interp/kernels.h"
#include "storage/datagen.h"

namespace {

using namespace avm;
using interp::KernelRegistry;
using interp::OperandMode;

constexpr uint32_t kN = 16 * 1024;

struct Buffers {
  std::vector<int64_t> a, b, out, base, idx;
  std::vector<sel_t> sel;
  std::vector<uint8_t> bools;
  Buffers() {
    DataGen gen(3);
    a = gen.UniformI64(kN, -1000, 1000);
    b = gen.UniformI64(kN, 1, 1000);
    out.assign(kN, 0);
    base = gen.UniformI64(kN, 0, 99);
    idx = gen.UniformI64(kN, 0, kN - 1);
    sel.resize(kN);
    bools.resize(kN);
  }
};

Buffers& B() {
  static Buffers* b = new Buffers();
  return *b;
}

void Throughput(benchmark::State& state) {
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(kN) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Skeleton_Map(benchmark::State& state) {
  auto fn = KernelRegistry::Get().Binary(dsl::ScalarOp::kAdd, TypeId::kI64,
                                         OperandMode::kVecVec, false);
  for (auto _ : state) {
    fn(B().a.data(), B().b.data(), B().out.data(), nullptr, kN);
    benchmark::DoNotOptimize(B().out.data());
  }
  Throughput(state);
}
BENCHMARK(BM_Skeleton_Map);

void BM_Skeleton_Filter(benchmark::State& state) {
  const int64_t c = 0;
  auto fn = KernelRegistry::Get().Filter(dsl::ScalarOp::kGt, TypeId::kI64,
                                         true, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fn(B().a.data(), &c, nullptr, kN, B().sel.data()));
  }
  Throughput(state);
}
BENCHMARK(BM_Skeleton_Filter);

void BM_Skeleton_Fold(benchmark::State& state) {
  auto fn = KernelRegistry::Get().Fold(dsl::ScalarOp::kAdd, TypeId::kI64);
  for (auto _ : state) {
    int64_t acc = 0;
    fn(B().a.data(), nullptr, kN, &acc);
    benchmark::DoNotOptimize(acc);
  }
  Throughput(state);
}
BENCHMARK(BM_Skeleton_Fold);

void BM_Skeleton_Gather(benchmark::State& state) {
  auto fn = KernelRegistry::Get().GatherI64Idx(TypeId::kI64, false);
  for (auto _ : state) {
    fn(B().base.data(), B().idx.data(), B().out.data(), nullptr, kN);
    benchmark::DoNotOptimize(B().out.data());
  }
  Throughput(state);
}
BENCHMARK(BM_Skeleton_Gather);

void BM_Skeleton_ScatterAdd(benchmark::State& state) {
  std::vector<int64_t> acc(kN, 0);
  auto fn = KernelRegistry::Get().Scatter(dsl::ScalarOp::kAdd, TypeId::kI64);
  for (auto _ : state) {
    fn(B().idx.data(), B().a.data(), acc.data(), nullptr, kN);
    benchmark::DoNotOptimize(acc.data());
  }
  Throughput(state);
}
BENCHMARK(BM_Skeleton_ScatterAdd);

void BM_Skeleton_Condense(benchmark::State& state) {
  // Selection of every other element.
  for (uint32_t i = 0; i < kN / 2; ++i) B().sel[i] = i * 2;
  auto fn = KernelRegistry::Get().Condense(TypeId::kI64);
  for (auto _ : state) {
    fn(B().a.data(), nullptr, B().out.data(), B().sel.data(), kN / 2);
    benchmark::DoNotOptimize(B().out.data());
  }
  Throughput(state);
}
BENCHMARK(BM_Skeleton_Condense);

void BM_Skeleton_BoolToSel(benchmark::State& state) {
  for (uint32_t i = 0; i < kN; ++i) B().bools[i] = (i % 3) == 0;
  auto fn = KernelRegistry::Get().BoolToSel(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fn(B().bools.data(), nullptr, nullptr, kN, B().sel.data()));
  }
  Throughput(state);
}
BENCHMARK(BM_Skeleton_BoolToSel);

void BM_Skeleton_Cast(benchmark::State& state) {
  std::vector<int32_t> narrow(kN);
  auto fn = KernelRegistry::Get().Cast(TypeId::kI64, TypeId::kI32, false);
  for (auto _ : state) {
    fn(B().a.data(), nullptr, narrow.data(), nullptr, kN);
    benchmark::DoNotOptimize(narrow.data());
  }
  Throughput(state);
}
BENCHMARK(BM_Skeleton_Cast);

void BM_Skeleton_SelectiveMap(benchmark::State& state) {
  // Selective execution over a 50% selection (X100-style).
  for (uint32_t i = 0; i < kN / 2; ++i) B().sel[i] = i * 2;
  auto fn = KernelRegistry::Get().Binary(dsl::ScalarOp::kMul, TypeId::kI64,
                                         OperandMode::kVecVec, true);
  for (auto _ : state) {
    fn(B().a.data(), B().b.data(), B().out.data(), B().sel.data(), kN / 2);
    benchmark::DoNotOptimize(B().out.data());
  }
  Throughput(state);
}
BENCHMARK(BM_Skeleton_SelectiveMap);

void BM_Skeleton_Hash(benchmark::State& state) {
  auto fn = KernelRegistry::Get().Unary(dsl::ScalarOp::kHash, TypeId::kI64,
                                        false);
  for (auto _ : state) {
    fn(B().a.data(), nullptr, B().out.data(), nullptr, kN);
    benchmark::DoNotOptimize(B().out.data());
  }
  Throughput(state);
}
BENCHMARK(BM_Skeleton_Hash);

}  // namespace
