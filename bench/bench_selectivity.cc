// E2 — selectivity-adaptive filter flavors (§III-C, micro-adaptivity [24]).
//
// Expected shape: the branching flavor wins at very low and very high
// selectivity (predictable branch), the branchless selection-vector flavor
// wins in the middle, full-compute is competitive near 100%; the adaptive
// chooser tracks the winner within a few percent everywhere.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "interp/kernels.h"
#include "interp/micro_adaptive.h"
#include "storage/datagen.h"
#include "util/timer.h"

namespace {

using namespace avm;
using interp::FilterVariant;
using interp::KernelRegistry;

constexpr uint32_t kN = 64 * 1024;

const std::vector<int32_t>& Data() {
  static auto* data = [] {
    DataGen gen(7);
    auto v = new std::vector<int32_t>(kN);
    for (auto& x : *v) {
      x = static_cast<int32_t>(gen.rng().NextBounded(1000));
    }
    return v;
  }();
  return *data;
}

// selectivity expressed in permille via the predicate constant.
int32_t CutoffFor(int64_t permille) {
  return static_cast<int32_t>(permille);  // values uniform in [0, 1000)
}

void RunFilter(benchmark::State& state, FilterVariant variant) {
  const auto& data = Data();
  const int32_t cutoff = CutoffFor(state.range(0));
  std::vector<sel_t> sel(kN);
  auto fn = KernelRegistry::Get().Filter(dsl::ScalarOp::kLt, TypeId::kI32,
                                         true, false, variant);
  uint32_t count = 0;
  for (auto _ : state) {
    count = fn(data.data(), &cutoff, nullptr, kN, sel.data());
    benchmark::DoNotOptimize(sel.data());
    benchmark::DoNotOptimize(count);
  }
  state.counters["selectivity"] = static_cast<double>(count) / kN;
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(kN) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Filter_Branchless(benchmark::State& state) {
  RunFilter(state, FilterVariant::kBranchless);
}
void BM_Filter_Branching(benchmark::State& state) {
  RunFilter(state, FilterVariant::kBranching);
}

void BM_Filter_FullCompute(benchmark::State& state) {
  // bool-map + bool->selvec (two passes over all rows).
  const auto& data = Data();
  const int32_t cutoff = CutoffFor(state.range(0));
  std::vector<uint8_t> bools(kN);
  std::vector<sel_t> sel(kN);
  auto cmp = KernelRegistry::Get().Binary(
      dsl::ScalarOp::kLt, TypeId::kI32, interp::OperandMode::kVecScalar,
      false);
  auto to_sel = KernelRegistry::Get().BoolToSel(false);
  uint32_t count = 0;
  for (auto _ : state) {
    cmp(data.data(), &cutoff, bools.data(), nullptr, kN);
    count = to_sel(bools.data(), nullptr, nullptr, kN, sel.data());
    benchmark::DoNotOptimize(count);
  }
  state.counters["selectivity"] = static_cast<double>(count) / kN;
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(kN) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Filter_MicroAdaptive(benchmark::State& state) {
  // The adaptive chooser flips between the three flavors online.
  const auto& data = Data();
  const int32_t cutoff = CutoffFor(state.range(0));
  std::vector<uint8_t> bools(kN);
  std::vector<sel_t> sel(kN);
  const auto& reg = KernelRegistry::Get();
  auto branchless = reg.Filter(dsl::ScalarOp::kLt, TypeId::kI32, true, false,
                               FilterVariant::kBranchless);
  auto branching = reg.Filter(dsl::ScalarOp::kLt, TypeId::kI32, true, false,
                              FilterVariant::kBranching);
  auto cmp = reg.Binary(dsl::ScalarOp::kLt, TypeId::kI32,
                        interp::OperandMode::kVecScalar, false);
  auto to_sel = reg.BoolToSel(false);
  interp::MicroAdaptiveChooser chooser(3);
  uint32_t count = 0;
  for (auto _ : state) {
    size_t arm = chooser.Choose();
    uint64_t t0 = ReadCycleCounter();
    switch (arm) {
      case 0:
        count = branchless(data.data(), &cutoff, nullptr, kN, sel.data());
        break;
      case 1:
        count = branching(data.data(), &cutoff, nullptr, kN, sel.data());
        break;
      default:
        cmp(data.data(), &cutoff, bools.data(), nullptr, kN);
        count = to_sel(bools.data(), nullptr, nullptr, kN, sel.data());
    }
    chooser.Observe(arm, static_cast<double>(ReadCycleCounter() - t0) / kN);
    benchmark::DoNotOptimize(count);
  }
  state.counters["selectivity"] = static_cast<double>(count) / kN;
  state.counters["best_arm"] = static_cast<double>(chooser.Best());
  state.counters["tuples/s"] = benchmark::Counter(
      static_cast<double>(kN) * state.iterations(),
      benchmark::Counter::kIsRate);
}

#define SELECTIVITY_SWEEP()                                            \
  Arg(10)->Arg(50)->Arg(100)->Arg(250)->Arg(500)->Arg(750)->Arg(900)-> \
      Arg(990)

BENCHMARK(BM_Filter_Branchless)->SELECTIVITY_SWEEP();
BENCHMARK(BM_Filter_Branching)->SELECTIVITY_SWEEP();
BENCHMARK(BM_Filter_FullCompute)->SELECTIVITY_SWEEP();
BENCHMARK(BM_Filter_MicroAdaptive)->SELECTIVITY_SWEEP();

// --- per-kernel-tier rows (scalar vs sse2 vs avx2 on the same host) --------
//
// range(0) = selectivity permille, range(1) = KernelTier. Unsupported tiers
// (e.g. avx2 on a non-AVX2 host) skip instead of silently re-measuring a
// clamped tier. The JSON strategy label carries the tier name so BENCH
// results keep one row per (selectivity, tier).

void RunFilterTier(benchmark::State& state, FilterVariant variant) {
  const auto tier = static_cast<interp::KernelTier>(state.range(1));
  if (interp::ResolveKernelTier(tier) != tier) {
    state.SkipWithError("kernel tier unsupported on this host/build");
    return;
  }
  const auto& data = Data();
  const int32_t cutoff = CutoffFor(state.range(0));
  std::vector<sel_t> sel(kN);
  auto fn = KernelRegistry::ForTier(tier).Filter(dsl::ScalarOp::kLt,
                                                 TypeId::kI32, true, false,
                                                 variant);
  uint32_t count = 0;
  for (auto _ : state) {
    count = fn(data.data(), &cutoff, nullptr, kN, sel.data());
    benchmark::DoNotOptimize(sel.data());
    benchmark::DoNotOptimize(count);
  }
  state.counters["selectivity"] = static_cast<double>(count) / kN;
  benchutil::ReportTuples(state, kN, interp::TierName(tier));
}

void BM_FilterTier_Branchless(benchmark::State& state) {
  RunFilterTier(state, FilterVariant::kBranchless);
}
void BM_FilterTier_Branching(benchmark::State& state) {
  RunFilterTier(state, FilterVariant::kBranching);
}

#define TIER_SWEEP()                                      \
  ArgsProduct({{10, 100, 500, 900, 990}, {0, 1, 2}})

BENCHMARK(BM_FilterTier_Branchless)->TIER_SWEEP();
BENCHMARK(BM_FilterTier_Branching)->TIER_SWEEP();

// Fold (aggregate) throughput per tier: sum over i64 and f64 columns.

template <typename T>
void RunFoldTier(benchmark::State& state) {
  const auto tier = static_cast<interp::KernelTier>(state.range(0));
  if (interp::ResolveKernelTier(tier) != tier) {
    state.SkipWithError("kernel tier unsupported on this host/build");
    return;
  }
  static auto* data = [] {
    DataGen gen(13);
    auto v = new std::vector<T>(kN);
    for (auto& x : *v) {
      x = static_cast<T>(gen.rng().NextBounded(1000));
    }
    return v;
  }();
  auto fn =
      KernelRegistry::ForTier(tier).Fold(dsl::ScalarOp::kAdd, TypeIdOf<T>::value);
  for (auto _ : state) {
    T acc = T(0);
    fn(data->data(), nullptr, kN, &acc);
    benchmark::DoNotOptimize(acc);
  }
  benchutil::ReportTuples(state, kN, interp::TierName(tier));
}

void BM_FoldTier_SumI64(benchmark::State& state) {
  RunFoldTier<int64_t>(state);
}
void BM_FoldTier_SumF64(benchmark::State& state) {
  RunFoldTier<double>(state);
}

BENCHMARK(BM_FoldTier_SumI64)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_FoldTier_SumF64)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
