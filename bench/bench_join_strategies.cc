// Hash-join probe strategies through the engine facade: the same
// star-schema join (fact probe against a densified dimension, SUM + COUNT
// over the matches) under vectorized interpretation, the adaptive JIT, and
// a 4-worker Session, plus a 4-client × 4-worker concurrent variant; then
// the build-side families the dense fast path cannot serve — duplicate-
// heavy keys (avg fan-out 4, many-to-many pairs) and sparse/negative
// 64-bit keys — probed through the CSR hash table, with a dense-vs-forced-
// hash pairing on identical unique-key data to isolate the probe cost.
// Results land in BENCH_results.json via bench_util's row-replacing sink.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "engine/query_builder.h"
#include "engine/session.h"
#include "relational/join.h"
#include "storage/datagen.h"
#include "util/rng.h"

namespace {

using namespace avm;

constexpr uint64_t kProbeRows = 1'000'000;
constexpr int64_t kDimRows = 50'000;  // ~5% of probe rows, 80% hit rate

// Sparse 64-bit key for index i: spread over a huge, partly negative
// domain (far beyond the ~16M dense cap) while staying collision-free.
int64_t SparseKey(int64_t i) { return i * 2'000'003 - 50'000'000'000LL; }

struct JoinFixture {
  std::unique_ptr<Table> probe;
  std::unique_ptr<Table> dim;
  std::unique_ptr<Table> dim_dup;       ///< same key domain, 1..7 copies each
  std::unique_ptr<Table> probe_sparse;  ///< SparseKey-mapped probe keys
  std::unique_ptr<Table> dim_sparse;    ///< SparseKey(0..kDimRows), unique

  JoinFixture() {
    Schema ps({{"f_key", TypeId::kI64}, {"f_val", TypeId::kI64}});
    probe = std::make_unique<Table>(ps);
    Rng rng(1234);
    std::vector<int64_t> fk(kProbeRows), fv(kProbeRows);
    for (uint64_t i = 0; i < kProbeRows; ++i) {
      // 80% of probe keys land inside the dimension's [0, kDimRows) domain.
      fk[i] = rng.NextInRange(0, (kDimRows * 5) / 4 - 1);
      fv[i] = rng.NextInRange(1, 999);
    }
    probe->column(0)
        .AppendValues(fk.data(), static_cast<uint32_t>(kProbeRows))
        .Abort("append");
    probe->column(1)
        .AppendValues(fv.data(), static_cast<uint32_t>(kProbeRows))
        .Abort("append");

    Schema ds({{"d_key", TypeId::kI64}, {"d_weight", TypeId::kI64}});
    dim = std::make_unique<Table>(ds);
    std::vector<int64_t> dk(kDimRows), dw(kDimRows);
    for (int64_t i = 0; i < kDimRows; ++i) {
      dk[static_cast<size_t>(i)] = i;
      dw[static_cast<size_t>(i)] = rng.NextInRange(1, 99);
    }
    dim->column(0)
        .AppendValues(dk.data(), static_cast<uint32_t>(kDimRows))
        .Abort("append");
    dim->column(1)
        .AppendValues(dw.data(), static_cast<uint32_t>(kDimRows))
        .Abort("append");

    // Duplicate-heavy dimension: every key in [0, kDimRows) appears 1..7
    // times (avg fan-out 4 on a probe hit) — the many-to-many CSR path.
    dim_dup = std::make_unique<Table>(ds);
    std::vector<int64_t> ddk, ddw;
    for (int64_t i = 0; i < kDimRows; ++i) {
      const int64_t copies = rng.NextInRange(1, 7);
      for (int64_t c = 0; c < copies; ++c) {
        ddk.push_back(i);
        ddw.push_back(rng.NextInRange(1, 99));
      }
    }
    dim_dup->column(0)
        .AppendValues(ddk.data(), static_cast<uint32_t>(ddk.size()))
        .Abort("append");
    dim_dup->column(1)
        .AppendValues(ddw.data(), static_cast<uint32_t>(ddw.size()))
        .Abort("append");

    // Sparse-key pair: the same 80% hit rate and unique build keys as the
    // dense fixture, but keys spread (negative, >2^24) so only the hash
    // table can serve them.
    probe_sparse = std::make_unique<Table>(ps);
    std::vector<int64_t> sk(kProbeRows);
    for (uint64_t i = 0; i < kProbeRows; ++i) {
      sk[i] = SparseKey(rng.NextInRange(0, (kDimRows * 5) / 4 - 1));
    }
    probe_sparse->column(0)
        .AppendValues(sk.data(), static_cast<uint32_t>(kProbeRows))
        .Abort("append");
    probe_sparse->column(1)
        .AppendValues(fv.data(), static_cast<uint32_t>(kProbeRows))
        .Abort("append");
    dim_sparse = std::make_unique<Table>(ds);
    std::vector<int64_t> sdk(kDimRows);
    for (int64_t i = 0; i < kDimRows; ++i) {
      sdk[static_cast<size_t>(i)] = SparseKey(i);
    }
    dim_sparse->column(0)
        .AppendValues(sdk.data(), static_cast<uint32_t>(kDimRows))
        .Abort("append");
    dim_sparse->column(1)
        .AppendValues(dw.data(), static_cast<uint32_t>(kDimRows))
        .Abort("append");
  }
};

JoinFixture& Fixture() {
  static JoinFixture f;
  return f;
}

void RunJoin(benchmark::State& state, engine::ExecutionStrategy strategy,
             size_t workers, const char* label) {
  JoinFixture& f = Fixture();
  engine::EngineOptions eo;
  eo.strategy = strategy;
  eo.num_workers = workers;
  // One engine per benchmark: the trace cache persists across iterations,
  // so the JIT variant measures steady-state (compiled) probes.
  engine::ExecEngine engine(eo);
  engine::Query q =
      relational::MakeJoinQuery(*f.probe, "f_key", "f_val", *f.dim, "d_key",
                                "d_weight")
          .ValueOrDie();
  // Warm the trace cache outside the timing loop: the JIT variant measures
  // steady-state compiled probes, not one-off host-compiler invocations.
  {
    auto r = engine.Run(q.context());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  for (auto _ : state) {
    q.ResetAggregates();
    auto r = engine.Run(q.context());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(q.aggregate("revenue")[0]);
  }
  avm::benchutil::ReportTuples(state, kProbeRows, label);
}

void BM_JoinProbe_Interp(benchmark::State& state) {
  RunJoin(state, engine::ExecutionStrategy::kInterpret, 1, "interp");
}
BENCHMARK(BM_JoinProbe_Interp)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_JoinProbe_AdaptiveJit(benchmark::State& state) {
  RunJoin(state, engine::ExecutionStrategy::kAdaptiveJit, 1, "adaptive-jit");
}
BENCHMARK(BM_JoinProbe_AdaptiveJit)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_JoinProbe_SessionParallel4(benchmark::State& state) {
  RunJoin(state, engine::ExecutionStrategy::kAdaptiveJit, 4,
          "session-4w");
}
BENCHMARK(BM_JoinProbe_SessionParallel4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// 4 concurrent clients × 4 workers on ONE session: join probes interleave
/// morsel-by-morsel over the shared crew.
void BM_JoinProbe_Session4Clients(benchmark::State& state) {
  JoinFixture& f = Fixture();
  engine::SessionOptions so;
  so.num_workers = 4;
  engine::Session session(so);
  engine::QueryOptions qo;
  qo.strategy = engine::ExecutionStrategy::kAdaptiveJit;

  constexpr int kClients = 4;
  std::vector<engine::Query> queries;
  for (int c = 0; c < kClients; ++c) {
    queries.push_back(relational::MakeJoinQuery(*f.probe, "f_key", "f_val",
                                                *f.dim, "d_key", "d_weight")
                          .ValueOrDie());
  }
  for (auto _ : state) {
    std::vector<engine::QueryHandle> handles;
    for (engine::Query& q : queries) {
      q.ResetAggregates();
      handles.push_back(session.Submit(q.context(), qo));
    }
    for (engine::QueryHandle& h : handles) {
      auto r = h.Wait();
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    }
  }
  avm::benchutil::ReportTuples(state, kProbeRows * kClients,
                               "session-4w-4clients");
}
BENCHMARK(BM_JoinProbe_Session4Clients)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Build-side families through the QueryBuilder knob: probe `probe_table`
/// against `dim_table` with the given JoinStrategy and worker count. The
/// dense fixture under kAuto takes the key-indexed fast path; the same
/// data under kHash — and the duplicate/sparse fixtures under any
/// strategy — goes through the CSR hash table.
void RunBuilderJoin(benchmark::State& state, const Table& probe_table,
                    const Table& dim_table, engine::JoinStrategy strategy,
                    size_t workers, const char* label) {
  engine::EngineOptions eo;
  eo.strategy = engine::ExecutionStrategy::kInterpret;
  eo.num_workers = workers;
  engine::ExecEngine engine(eo);
  engine::QueryBuilder qb(probe_table);
  qb.SetJoinStrategy(strategy)
      .Join(dim_table, "f_key", "d_key", {"d_weight"})
      .Sum("revenue", dsl::Var("f_val") * dsl::Var("d_weight"))
      .Count("matches");
  engine::Query q = qb.Build().ValueOrDie();
  {
    auto r = engine.Run(q.context());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  for (auto _ : state) {
    q.ResetAggregates();
    auto r = engine.Run(q.context());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(q.aggregate("matches")[0]);
  }
  avm::benchutil::ReportTuples(state, kProbeRows, label);
}

void BM_JoinBuild_DensePath(benchmark::State& state) {
  JoinFixture& f = Fixture();
  RunBuilderJoin(state, *f.probe, *f.dim, engine::JoinStrategy::kAuto, 1,
                 "interp-dense");
}
BENCHMARK(BM_JoinBuild_DensePath)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_JoinBuild_HashForced(benchmark::State& state) {
  // Identical data to BM_JoinBuild_DensePath — the delta is pure CSR
  // bucket-walk overhead versus the key-indexed gather.
  JoinFixture& f = Fixture();
  RunBuilderJoin(state, *f.probe, *f.dim, engine::JoinStrategy::kHash, 1,
                 "interp-hash-forced");
}
BENCHMARK(BM_JoinBuild_HashForced)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_JoinBuild_DupFanOut4(benchmark::State& state) {
  JoinFixture& f = Fixture();
  RunBuilderJoin(state, *f.probe, *f.dim_dup, engine::JoinStrategy::kAuto, 1,
                 "interp-dup-fanout4");
}
BENCHMARK(BM_JoinBuild_DupFanOut4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_JoinBuild_DupFanOut4Parallel4(benchmark::State& state) {
  JoinFixture& f = Fixture();
  RunBuilderJoin(state, *f.probe, *f.dim_dup, engine::JoinStrategy::kAuto, 4,
                 "interp-4w-dup-fanout4");
}
BENCHMARK(BM_JoinBuild_DupFanOut4Parallel4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_JoinBuild_SparseKeys(benchmark::State& state) {
  JoinFixture& f = Fixture();
  RunBuilderJoin(state, *f.probe_sparse, *f.dim_sparse,
                 engine::JoinStrategy::kAuto, 1, "interp-sparse-hash");
}
BENCHMARK(BM_JoinBuild_SparseKeys)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// ORDER BY + materialization: filtered probe rows joined, materialized,
/// and merge-sorted at the barrier (row-mode QueryBuilder path).
void BM_JoinOrderByMaterialize(benchmark::State& state,
                               engine::ExecutionStrategy strategy,
                               size_t workers, const char* label) {
  JoinFixture& f = Fixture();
  engine::EngineOptions eo;
  eo.strategy = strategy;
  eo.num_workers = workers;
  engine::ExecEngine engine(eo);
  auto build = [&] {
    engine::QueryBuilder qb(*f.probe);
    qb.Filter(dsl::Var("f_val") < dsl::ConstI(200))
        .Join(*f.dim, "f_key", "d_key", {"d_weight"})
        .Output("f_val")
        .OrderBy("d_weight", engine::SortDir::kDescending);
    return qb.Build().ValueOrDie();
  };
  // Warm the trace cache outside the timing loop (deterministic partitions
  // make the warmup's compiled traces serve every timed iteration).
  {
    engine::Query q = build();
    auto r = engine.Run(q.context());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  for (auto _ : state) {
    engine::Query q = build();
    auto r = engine.Run(q.context());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(q.num_result_rows());
  }
  avm::benchutil::ReportTuples(state, kProbeRows, label);
}

void BM_JoinOrderBy_Interp(benchmark::State& state) {
  BM_JoinOrderByMaterialize(state, engine::ExecutionStrategy::kInterpret, 1,
                            "interp");
}
BENCHMARK(BM_JoinOrderBy_Interp)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_JoinOrderBy_Parallel4(benchmark::State& state) {
  BM_JoinOrderByMaterialize(state, engine::ExecutionStrategy::kInterpret, 4,
                            "interp-4w");
}
BENCHMARK(BM_JoinOrderBy_Parallel4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The previously-DECLINED plan: join payload re-gather + post-filter
// compute + condensing ORDER BY output all compile under the
// selection-aware trace ABI (docs/TRACE_ABI.md) — before it, every hot
// fragment of this pipeline silently fell back to interpretation. The
// engine (and its trace cache) persists across iterations, so this
// measures steady-state compiled probes.
void BM_JoinOrderBy_AdaptiveJit(benchmark::State& state) {
  BM_JoinOrderByMaterialize(state, engine::ExecutionStrategy::kAdaptiveJit, 1,
                            "adaptive-jit");
}
BENCHMARK(BM_JoinOrderBy_AdaptiveJit)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_JoinOrderBy_Session4(benchmark::State& state) {
  BM_JoinOrderByMaterialize(state, engine::ExecutionStrategy::kAdaptiveJit, 4,
                            "session-4w");
}
BENCHMARK(BM_JoinOrderBy_Session4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
