#!/usr/bin/env bash
# Static-analysis driver: clang-tidy (curated .clang-tidy profile,
# warnings-as-errors) over the library sources, using the compile database
# exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
#
# Usage: scripts/run_static_analysis.sh [build-dir]
#
# The build dir must contain compile_commands.json (configure first). When
# no clang-tidy binary is on PATH the script SKIPS with exit 0 so that
# developer machines without LLVM keep a green local loop; the CI
# static-analysis job installs clang-tidy and therefore always runs it.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "       configure first: cmake -B ${BUILD_DIR} -S ." >&2
  exit 1
fi

TIDY=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "${cand}" >/dev/null 2>&1; then
    TIDY="${cand}"
    break
  fi
done
if [[ -z "${TIDY}" ]]; then
  echo "clang-tidy not found on PATH: skipping static analysis (ok locally;"
  echo "the CI static-analysis lane installs it and enforces a clean run)."
  exit 0
fi

# run-clang-tidy parallelizes across the compile database when available;
# fall back to a serial loop otherwise. Analyze library sources only —
# tests and benches link against the same headers and add little signal
# for triple the runtime.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "running ${TIDY} over ${#SOURCES[@]} sources (profile: .clang-tidy)"

RUNNER=""
for cand in run-clang-tidy run-clang-tidy-18 run-clang-tidy-17 \
            run-clang-tidy-16 run-clang-tidy-15 run-clang-tidy-14; do
  if command -v "${cand}" >/dev/null 2>&1; then
    RUNNER="${cand}"
    break
  fi
done

if [[ -n "${RUNNER}" ]]; then
  "${RUNNER}" -clang-tidy-binary "${TIDY}" -p "${BUILD_DIR}" -quiet \
    "^$(pwd)/src/.*\.cc$"
else
  "${TIDY}" -p "${BUILD_DIR}" --quiet "${SOURCES[@]}"
fi

echo "static analysis clean"
