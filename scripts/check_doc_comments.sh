#!/usr/bin/env bash
# Greps the named public headers for undocumented public symbols: every
# namespace-scope type, alias, enum, and free-function declaration (a
# column-0 declaration line) must be immediately preceded by a comment
# line ("///" contract comments by convention). Run from the repo root:
#
#   scripts/check_doc_comments.sh [header...]
#
# With no arguments it checks the headers the Trace-ABI, trace-cache and
# out-of-core PRs committed to keeping documented (docs/TRACE_ABI.md,
# docs/TRACE_CACHE.md and docs/SPILL.md satellites): exec_engine.h,
# adaptive_vm.h, trace_abi.h, jit_backend.h, backend_cc.h, disk_cache.h,
# the analysis headers, memory_tracker.h and spill_file.h. CI fails the
# build on any finding.
set -u

headers=("$@")
if [ ${#headers[@]} -eq 0 ]; then
  headers=(
    src/engine/exec_engine.h
    src/vm/adaptive_vm.h
    src/jit/trace_abi.h
    src/jit/jit_backend.h
    src/jit/backend_cc.h
    src/jit/disk_cache.h
    src/analysis/diagnostic.h
    src/analysis/verify_program.h
    src/analysis/verify_trace.h
    src/engine/memory_tracker.h
    src/storage/spill_file.h
  )
fi

fail=0
for h in "${headers[@]}"; do
  if [ ! -f "$h" ]; then
    echo "check_doc_comments: missing header $h" >&2
    fail=1
    continue
  fi
  findings=$(awk '
    # A column-0 declaration start: type/alias/enum definitions (not
    # forward declarations) and free-function declarations/definitions.
    function is_decl(line) {
      if (line ~ /^(struct|class|enum( class)?|union) [A-Za-z_][A-Za-z0-9_]*( (final|:)[^;]*)? \{/) return 1
      if (line ~ /^using [A-Za-z_][A-Za-z0-9_]* =/) return 1
      if (line ~ /^[A-Za-z_][A-Za-z0-9_:<>,*& ]*[ *&][A-Za-z_][A-Za-z0-9_]*\(/) return 1
      return 0
    }
    {
      if (is_decl($0) && prev !~ /^[[:space:]]*\/\// && prev !~ /^#/) {
        printf "%s:%d: undocumented public symbol: %s\n", FILENAME, FNR, $0
      }
      # Strict adjacency: a blank line breaks the comment-decl association,
      # so a stray earlier comment cannot vouch for a later symbol.
      prev = $0
    }
  ' "$h")
  if [ -n "$findings" ]; then
    echo "$findings"
    fail=1
  fi
done

if [ $fail -ne 0 ]; then
  echo "check_doc_comments: add /// contract comments to the symbols above" >&2
  exit 1
fi
echo "check_doc_comments: OK (${headers[*]})"
